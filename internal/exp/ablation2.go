package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Second batch of ablations: greedy optimality gap, scan order, and the
// early-sleep/sector energy decomposition.

// GreedyGapResult summarizes greedy vs. exact makespans over random small
// instances (the only sizes the NP-hard exact problem admits).
type GreedyGapResult struct {
	Instances  int
	MeanRatio  float64 // mean greedy/optimal makespan ratio
	WorstRatio float64
	ExactHits  int // instances where greedy matched the optimum
}

// AblationGreedyGap measures how far the paper's on-line greedy strays
// from the exact branch-and-bound optimum on random instances with the
// given number of requests.
func AblationGreedyGap(instances, nReq int, seed int64) (*GreedyGapResult, error) {
	if nReq > 9 {
		return nil, fmt.Errorf("exp: exact solver limited to small instances, got %d requests", nReq)
	}
	rng := rand.New(rand.NewSource(seed))
	res := &GreedyGapResult{Instances: instances, WorstRatio: 1}
	var ratios []float64
	for i := 0; i < instances; i++ {
		reqs, oracle := randomGapInstance(rng, nReq)
		g, _, err := core.Greedy(reqs, core.Options{Oracle: oracle})
		if err != nil {
			return nil, err
		}
		opt, err := core.Optimal(reqs, core.Options{Oracle: oracle})
		if err != nil {
			return nil, err
		}
		ratio := float64(g.Makespan()) / float64(opt.Makespan())
		ratios = append(ratios, ratio)
		if ratio > res.WorstRatio {
			res.WorstRatio = ratio
		}
		if g.Makespan() == opt.Makespan() {
			res.ExactHits++
		}
	}
	res.MeanRatio = stats.Mean(ratios)
	return res, nil
}

// randomGapInstance builds a random multi-hop instance over a pairwise
// compatibility table (same generator family as the core tests).
func randomGapInstance(rng *rand.Rand, nReq int) ([]core.Request, *radio.TableOracle) {
	var reqs []core.Request
	for i := 0; i < nReq; i++ {
		hops := 1 + rng.Intn(3)
		route := []int{0}
		for k := 0; k < hops; k++ {
			route = append([]int{10 + i*4 + k}, route...)
		}
		reqs = append(reqs, core.Request{ID: i + 1, Route: route})
	}
	o := radio.NewTableOracle()
	var all []radio.Transmission
	for _, r := range reqs {
		for k := 0; k < r.Hops(); k++ {
			all = append(all, r.Tx(k))
		}
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if rng.Float64() < 0.5 {
				o.AllowPair(all[i], all[j])
			}
		}
	}
	return reqs, o
}

// OrderRow reports the mean data slots per cycle under one scan-order
// heuristic.
type OrderRow struct {
	Order     string
	DataSlots float64
}

// AblationOrder compares scan-order heuristics for the greedy scheduler on
// a real cluster workload.
func AblationOrder(o Options, n int, seed int64, cycles int) ([]OrderRow, error) {
	c, err := topo.Build(topo.DefaultConfig(n, seed))
	if err != nil {
		return nil, err
	}
	demand := make([]int, n+1)
	for v := 1; v <= n; v++ {
		demand[v] = 2
	}
	plan, err := routing.BalancedPaths(c.G, topo.Head, demand, routing.BinarySearch)
	if err != nil {
		return nil, err
	}
	// One tested oracle shared by all heuristics — it is concurrency-safe,
	// so the parallel cells pool their learned compatibility knowledge
	// exactly as one head would across polling cycles.
	oracle := radio.NewTestedOracle(radio.SINROracle{M: c.Med}, 3)
	orders := []struct {
		name string
		fn   func([]core.Request) []int
	}{
		{"natural", core.OrderNatural},
		{"longest-first", core.OrderLongestFirst},
		{"shortest-first", core.OrderShortestFirst},
	}
	return Sweep(o, len(orders), func(i int) (OrderRow, error) {
		ord := orders[i]
		total := 0
		for cyc := 0; cyc < cycles; cyc++ {
			routes := plan.CycleRoutes(cyc)
			var reqs []core.Request
			id := 0
			for v := 1; v <= n; v++ {
				for k := 0; k < demand[v]; k++ {
					id++
					reqs = append(reqs, core.Request{ID: id, Route: routes[v]})
				}
			}
			sched, _, err := core.Greedy(reqs, core.Options{
				Oracle: oracle, Order: ord.fn(reqs),
			})
			if err != nil {
				return OrderRow{}, err
			}
			total += sched.Makespan()
		}
		return OrderRow{Order: ord.name, DataSlots: float64(total) / float64(cycles)}, nil
	})
}

// EnergyModeRow reports active time and lifetime for one sleeping policy.
type EnergyModeRow struct {
	Mode       string
	ActivePct  float64
	LifetimeHr float64
}

// AblationEnergyModes decomposes where the energy savings come from:
// baseline polling, idealized early sleep, sector partitioning, and both
// combined.
func AblationEnergyModes(o Options, n int, seed int64, cycles int, batteryJ float64) ([]EnergyModeRow, error) {
	c, err := topo.Build(topo.DefaultConfig(n, seed))
	if err != nil {
		return nil, err
	}
	base := cluster.DefaultParams()
	base.RateBps = 40
	base.LossProb = 0
	base.Seed = seed
	modes := []struct {
		name string
		mut  func(*cluster.Params)
	}{
		{"baseline", func(*cluster.Params) {}},
		{"early-sleep", func(p *cluster.Params) { p.EarlySleep = true }},
		{"sectors", func(p *cluster.Params) { p.UseSectors = true }},
		{"sectors+early", func(p *cluster.Params) { p.UseSectors = true; p.EarlySleep = true }},
	}
	em := energy.DefaultModel()
	// The four policies share one deployment; each cell gets its own
	// runner, and the medium's query fast path is read-only.
	return Sweep(o, len(modes), func(i int) (EnergyModeRow, error) {
		p := base
		modes[i].mut(&p)
		r, err := cluster.NewRunner(c, p)
		if err != nil {
			return EnergyModeRow{}, err
		}
		r.Obs = o.Obs
		s, err := r.Run(cycles)
		if err != nil {
			return EnergyModeRow{}, err
		}
		return EnergyModeRow{
			Mode:       modes[i].name,
			ActivePct:  s.MeanActive * 100,
			LifetimeHr: s.Lifetime(em, batteryJ).Hours(),
		}, nil
	})
}

// RenderGreedyGap formats the gap result.
func RenderGreedyGap(r *GreedyGapResult) string {
	return stats.Table(
		[]string{"instances", "greedy = optimal", "mean ratio", "worst ratio"},
		[][]string{{
			fmt.Sprint(r.Instances), fmt.Sprint(r.ExactHits),
			fmt.Sprintf("%.3f", r.MeanRatio), fmt.Sprintf("%.3f", r.WorstRatio),
		}},
	)
}

// RenderOrder formats the scan-order ablation.
func RenderOrder(rows []OrderRow) string {
	headers := []string{"scan order", "mean data slots"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Order, fmt.Sprintf("%.1f", r.DataSlots)})
	}
	return stats.Table(headers, out)
}

// RenderEnergyModes formats the sleeping-policy decomposition.
func RenderEnergyModes(rows []EnergyModeRow) string {
	headers := []string{"mode", "active %", "lifetime (h)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Mode, fmt.Sprintf("%.2f", r.ActivePct), fmt.Sprintf("%.1f", r.LifetimeHr),
		})
	}
	return stats.Table(headers, out)
}
