package exp

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mac/smac"
	"repro/internal/obs"
)

// TestFig7aPopulatesRegistry is the acceptance check for the observability
// tentpole: a figure sweep run with a registry-backed observer must leave
// nonzero cycle, slot, per-cell and energy-by-state series behind.
func TestFig7aPopulatesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	cluster.RegisterMetrics(reg)
	o := Options{Workers: 2, Obs: reg.Observer()}
	if _, err := Fig7a(o, QuickFig7a()); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.MetricSnapshot{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s
	}
	for _, name := range []string{
		cluster.MetricCycles,
		obs.Series(cluster.MetricSlotsTotal, "kind", "data"),
		obs.Series(cluster.MetricEnergyJoules, "state", "tx"),
		obs.Series(cluster.MetricEnergyJoules, "state", "sleep"),
		cluster.MetricPacketsDelivered,
		MetricCellsTotal,
	} {
		if s, ok := byName[name]; !ok || s.Value <= 0 {
			t.Errorf("series %q: %+v", name, s)
		}
	}
	// QuickFig7a has 6 cells; the cell histogram must have seen them all.
	if s := byName[MetricCellSeconds]; s.Count != 6 {
		t.Errorf("cell histogram count = %d, want 6", s.Count)
	}
	if s := byName[MetricCellsTotal]; s.Value != 6 {
		t.Errorf("cells total = %v, want 6", s.Value)
	}
}

// TestFig7bPopulatesSmacSeries checks that the S-MAC cells of the
// throughput sweep report through the same observer.
func TestFig7bPopulatesSmacSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig7b cells in -short mode")
	}
	reg := obs.NewRegistry()
	o := Options{Workers: 2, Obs: reg.Observer()}
	cfg := QuickFig7b()
	if _, err := Fig7b(o, cfg); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
	}
	if vals[smac.MetricContention] <= 0 {
		t.Errorf("%s = %v", smac.MetricContention, vals[smac.MetricContention])
	}
	if vals[cluster.MetricCycles] <= 0 {
		t.Errorf("%s = %v", cluster.MetricCycles, vals[cluster.MetricCycles])
	}
}
