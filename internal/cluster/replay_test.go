package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/topo"
)

func TestReplayAcceptsScheduledCycle(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(25, 181))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.RateBps = 40
	p.LossProb = 0
	sched, dur, err := ReplayCycleSchedules(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() == 0 {
		t.Fatal("empty schedule")
	}
	want := time.Duration(sched.Makespan()) * p.dataSlot()
	if dur != want {
		t.Fatalf("replay duration %v want %v", dur, want)
	}
}

func TestReplayRejectsCollidingSchedule(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(20, 191))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	// Hand-craft a colliding slot: two sensors transmitting to the head
	// simultaneously.
	var senders []int
	for v := 1; v <= 20 && len(senders) < 2; v++ {
		if c.Level[v] == 1 {
			senders = append(senders, v)
		}
	}
	if len(senders) < 2 {
		t.Skip("not enough first-level sensors")
	}
	sched := &core.Schedule{
		Slots: [][]radio.Transmission{{
			{From: senders[0], To: topo.Head},
			{From: senders[1], To: topo.Head},
		}},
		Start:     map[int]int{},
		Completed: map[int]int{},
	}
	if _, err := ReplaySchedule(c, sched, p); err == nil {
		t.Fatal("two simultaneous transmissions to the head must fail the replay")
	}
}

func TestReplayRejectsBadParams(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(5, 193))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.M = 0
	if _, err := ReplaySchedule(c, &core.Schedule{}, p); err == nil {
		t.Fatal("invalid params should error")
	}
}

func TestReplayWithSectorsRoutes(t *testing.T) {
	// Replay must also accept schedules built over sector-tree routes.
	c, err := topo.Build(topo.DefaultConfig(25, 197))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.UseSectors = true
	p.LossProb = 0
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for g, group := range r.groups {
		var reqs []core.Request
		id := 0
		for _, v := range group {
			id++
			reqs = append(reqs, core.Request{ID: id, Route: r.groupRoutes[g][v]})
		}
		sched, _, err := core.Greedy(reqs, core.Options{Oracle: r.Oracle})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReplaySchedule(c, sched, p); err != nil {
			t.Fatalf("sector %d replay failed: %v", g, err)
		}
	}
}
