package cluster

import (
	"testing"
	"time"

	"repro/internal/radio"
	"repro/internal/topo"
)

// The paper refuses to assume disc-shaped coverage: "a number of factors
// ... can make the covering area very oddly shaped and might not even be
// convex." Because the whole pipeline works from the *tested* connectivity
// and interference patterns rather than geometry, it must keep working
// under log-distance propagation with heavy per-link shadowing.
func TestClusterWorksUnderShadowedPropagation(t *testing.T) {
	prop := radio.NewLogDistance(3.5, 1)
	prop.ShadowDB = radio.HashShadow(23, 4)
	cfg := topo.DefaultConfig(25, 167)
	cfg.Prop = prop
	c, err := topo.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Shadowing must actually produce asymmetric links somewhere: find a
	// pair decodable one way but not the other.
	asym := 0
	for u := 1; u <= 25; u++ {
		for v := 1; v <= 25; v++ {
			if u != v && c.Med.InRange(u, v) && !c.Med.InRange(v, u) {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("4 dB shadowing should create asymmetric links")
	}

	p := DefaultParams()
	p.RateBps = 20
	p.LossProb = 0
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("shadowed cluster delivered %v", s.DeliveredFraction())
	}
	if !s.AllFit {
		t.Fatal("light load should fit even under shadowing")
	}
}

func TestOverheadAccountedInDuty(t *testing.T) {
	// The duty must decompose exactly into wake + ack slots + data slots
	// + sleep, i.e. all protocol overhead is charged.
	c, err := topo.Build(topo.DefaultConfig(15, 173))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	pollT := p.txTime(p.PollBytes)
	want := 2*pollT + // wake + sleep broadcasts
		time.Duration(res.AckSlots)*p.ackSlot() +
		time.Duration(res.DataSlots)*p.dataSlot()
	if res.Duty != want {
		t.Fatalf("duty %v != decomposition %v", res.Duty, want)
	}
}
