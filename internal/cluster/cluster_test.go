package cluster

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/topo"
)

func buildRunner(t *testing.T, n int, p Params, seed int64) *Runner {
	t.Helper()
	c, err := topo.Build(topo.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParamsValidation(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.BandwidthBps = 0 },
		func(p *Params) { p.Cycle = 0 },
		func(p *Params) { p.LossProb = 1 },
		func(p *Params) { p.RateBps = -1 },
		func(p *Params) { p.DataBytes = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := NewRunner(c, p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSlotTimes(t *testing.T) {
	p := DefaultParams()
	// 80-byte data at 200 kbps = 3.2 ms; poll adds another 3.2 ms.
	if got := p.txTime(80); got != 3200*time.Microsecond {
		t.Fatalf("txTime(80) = %v", got)
	}
	if got := p.dataSlot(); got != 6400*time.Microsecond {
		t.Fatalf("dataSlot = %v", got)
	}
	if p.ackSlot() >= p.dataSlot() {
		t.Fatal("ack slot should be shorter than data slot")
	}
}

func TestRunCycleDeliversEverything(t *testing.T) {
	p := DefaultParams()
	p.LossProb = 0
	p.Seed = 3
	r := buildRunner(t, 20, p, 5)
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fits {
		t.Fatal("light load should fit the cycle")
	}
	if res.Delivered != res.Offered {
		t.Fatalf("delivered %d of %d", res.Delivered, res.Offered)
	}
	if res.Offered == 0 {
		t.Fatal("CBR at 20 B/s over 4 s should offer packets")
	}
	if res.ActiveFraction <= 0 || res.ActiveFraction > 1 {
		t.Fatalf("active fraction %v", res.ActiveFraction)
	}
	// 100% throughput is the headline claim for polling.
	if res.Retries != 0 {
		t.Fatalf("lossless run had %d retries", res.Retries)
	}
}

func TestLossCausesRetriesButFullDelivery(t *testing.T) {
	p := DefaultParams()
	p.LossProb = 0.1
	p.Seed = 11
	r := buildRunner(t, 15, p, 7)
	s, err := r.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Retries == 0 {
		t.Fatal("10% loss should cause retries")
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("delivered fraction %v; re-polling must recover all packets", s.DeliveredFraction())
	}
}

func TestActiveFractionGrowsWithRateAndSize(t *testing.T) {
	active := func(n int, rate float64) float64 {
		p := DefaultParams()
		p.RateBps = rate
		p.LossProb = 0
		r := buildRunner(t, n, p, 13)
		s, err := r.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return s.MeanActive
	}
	low := active(15, 20)
	highRate := active(15, 80)
	bigger := active(45, 20)
	if highRate <= low {
		t.Fatalf("active fraction should grow with rate: %v vs %v", highRate, low)
	}
	if bigger <= low {
		t.Fatalf("active fraction should grow with cluster size: %v vs %v", bigger, low)
	}
}

func TestSectorsReduceActiveTime(t *testing.T) {
	base := DefaultParams()
	base.LossProb = 0
	base.RateBps = 40
	withSec := base
	withSec.UseSectors = true

	c, err := topo.Build(topo.DefaultConfig(30, 17))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewRunner(c, base)
	if err != nil {
		t.Fatal(err)
	}
	sectored, err := NewRunner(c, withSec)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := plain.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sectored.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if sectored.Part == nil || sectored.Part.NSectors() < 2 {
		t.Skip("deployment produced a single sector; no comparison possible")
	}
	if ss.MeanActive >= sp.MeanActive {
		t.Fatalf("sectors should cut mean active time: %v vs %v", ss.MeanActive, sp.MeanActive)
	}
	// Fig. 7(c): lifetime with sectors exceeds lifetime without.
	m := energy.DefaultModel()
	lp := sp.Lifetime(m, 100)
	ls := ss.Lifetime(m, 100)
	if ls <= lp {
		t.Fatalf("sector lifetime %v should exceed plain %v", ls, lp)
	}
}

func TestOverloadDoesNotFit(t *testing.T) {
	p := DefaultParams()
	p.RateBps = 400 // absurd per-sensor load
	p.LossProb = 0
	r := buildRunner(t, 60, p, 19)
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fits {
		t.Fatal("overload should not fit the cycle")
	}
	if res.Delivered >= res.Offered {
		t.Fatal("overload must shed packets")
	}
	if res.ActiveFraction != 1 {
		t.Fatalf("overloaded sensors should be fully active, got %v", res.ActiveFraction)
	}
}

func TestProfilesAccountFullWindow(t *testing.T) {
	p := DefaultParams()
	p.LossProb = 0
	r := buildRunner(t, 12, p, 23)
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 12; v++ {
		prof := res.Profiles[v]
		total := prof.InTx + prof.InRx + prof.InIdle
		// Without sectors every sensor is awake for the whole duty.
		if total != res.Duty {
			t.Fatalf("sensor %d accounts %v of %v duty", v, total, res.Duty)
		}
		if prof.InTx == 0 {
			t.Fatalf("sensor %d never transmitted (it must at least ack/send)", v)
		}
	}
	// The head's profile is untouched.
	if res.Profiles[0].InTx != 0 {
		t.Fatal("head profile should remain zero")
	}
}

func TestRunAggregation(t *testing.T) {
	p := DefaultParams()
	p.LossProb = 0
	r := buildRunner(t, 10, p, 29)
	s, err := r.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles != 4 {
		t.Fatalf("cycles = %d", s.Cycles)
	}
	if !s.AllFit {
		t.Fatal("light load should always fit")
	}
	if s.MeanActive <= 0 {
		t.Fatal("mean active fraction should be positive")
	}
	if s.MeanDuty <= 0 || s.MeanDataSlots <= 0 {
		t.Fatalf("means: duty %v data %v", s.MeanDuty, s.MeanDataSlots)
	}
	if _, err := r.Run(0); err == nil {
		t.Fatal("zero cycles should error")
	}
}

func TestDelayVariantRuns(t *testing.T) {
	p := DefaultParams()
	p.AllowDelay = true
	p.LossProb = 0
	r := buildRunner(t, 10, p, 31)
	s, err := r.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("delay variant delivered %v", s.DeliveredFraction())
	}
}

func TestOracleTestsBoundedBySectors(t *testing.T) {
	// Section IV: managing sensors by sectors shrinks the number of
	// interference groups the head must test.
	c, err := topo.Build(topo.DefaultConfig(40, 37))
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultParams()
	base.LossProb = 0
	withSec := base
	withSec.UseSectors = true
	plain, err := NewRunner(c, base)
	if err != nil {
		t.Fatal(err)
	}
	sectored, err := NewRunner(c, withSec)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := plain.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sectored.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if sectored.Part.NSectors() >= 2 && ss.OracleTests >= sp.OracleTests {
		t.Fatalf("sector mode tested %d groups, plain %d; sectors should test fewer",
			ss.OracleTests, sp.OracleTests)
	}
}

func TestTokenAndColoredCycles(t *testing.T) {
	duties := []time.Duration{time.Second, 2 * time.Second, time.Second}
	if got := TokenRotationCycle(duties); got != 4*time.Second {
		t.Fatalf("token cycle = %v", got)
	}
	// Clusters 0 and 2 share channel 0; cluster 1 is alone on channel 1.
	got, err := ColoredCycle(duties, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*time.Second {
		t.Fatalf("colored cycle = %v", got)
	}
	if _, err := ColoredCycle(duties, []int{0}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	// Coloring can never be worse than the token.
	if got > TokenRotationCycle(duties) {
		t.Fatal("colored cycle exceeded token rotation")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	p := DefaultParams()
	p.Seed = 41
	a := buildRunner(t, 12, p, 43)
	b := buildRunner(t, 12, p, 43)
	ra, err := a.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Offered != rb.Offered || ra.DataSlots != rb.DataSlots || ra.Retries != rb.Retries {
		t.Fatalf("identical runs diverged: %+v vs %+v", ra, rb)
	}
}
