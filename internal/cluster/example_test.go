package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topo"
)

// One duty cycle end to end: wake broadcast, set-cover acknowledgment
// collection, pipelined data polling, sleep. Polling delivers every
// offered packet while sensors stay mostly asleep.
func ExampleRunner_RunCycle() {
	c, err := topo.Build(topo.DefaultConfig(20, 42))
	if err != nil {
		panic(err)
	}
	p := cluster.DefaultParams()
	p.LossProb = 0
	p.RateBps = 40
	r, err := cluster.NewRunner(c, p)
	if err != nil {
		panic(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		panic(err)
	}
	fmt.Println("all delivered:", res.Delivered == res.Offered)
	fmt.Println("fits the cycle:", res.Fits)
	fmt.Println("mostly asleep:", res.ActiveFraction < 0.5)
	// Output:
	// all delivered: true
	// fits the cycle: true
	// mostly asleep: true
}

// Sector partitioning (Section IV) cuts idle listening: the same cluster
// with sectors wakes each sensor for a fraction of the duty.
func ExampleRunner_sectors() {
	c, err := topo.Build(topo.DefaultConfig(30, 17))
	if err != nil {
		panic(err)
	}
	base := cluster.DefaultParams()
	base.LossProb = 0
	base.RateBps = 40
	sectored := base
	sectored.UseSectors = true

	run := func(p cluster.Params) float64 {
		r, err := cluster.NewRunner(c, p)
		if err != nil {
			panic(err)
		}
		s, err := r.Run(3)
		if err != nil {
			panic(err)
		}
		return s.MeanActive
	}
	fmt.Println("sectors reduce active time:", run(sectored) < run(base))
	// Output:
	// sectors reduce active time: true
}
