package cluster

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/topo"
)

// Longitudinal simulation: run a cluster with real per-sensor batteries
// until they deplete. When a sensor dies the head re-plans routing (and
// sectors) around it; sensors stranded by the death stop participating.
// The result is the network-lifetime curve — how delivery capacity decays
// as batteries fail — extending the paper's Fig. 7(c) single-number
// lifetime into a trajectory.

// DeathEvent records one sensor's demise.
type DeathEvent struct {
	Sensor int
	// Cycle is the duty-cycle index at which the battery ran out.
	Cycle int
	// At is the elapsed simulated time.
	At time.Duration
	// Stranded lists sensors left without a relaying path as a result.
	Stranded []int
}

// LongitudinalResult summarizes a battery-depletion run.
type LongitudinalResult struct {
	// Cycles simulated before the stop condition.
	Cycles int
	// Deaths in order of occurrence.
	Deaths []DeathEvent
	// FirstDeath and LastAlive bracket the network's decay: time of the
	// first battery death and the time the run stopped.
	FirstDeath time.Duration
	End        time.Duration
	// DeliveredTotal and OfferedTotal count packets across the run
	// (offered counts only live sensors' packets).
	DeliveredTotal, OfferedTotal int
	// AliveAtEnd counts sensors still powered when the run stopped.
	AliveAtEnd int
}

// RunLongitudinal simulates up to maxCycles duty cycles with per-sensor
// batteries of the given capacity, killing sensors as they deplete and
// re-planning after every death. It stops early when fewer than
// minAliveFraction of the sensors remain reachable.
func RunLongitudinal(c *topo.Cluster, p Params, batteryJoules float64,
	maxCycles int, minAliveFraction float64) (*LongitudinalResult, error) {
	if maxCycles < 1 {
		return nil, fmt.Errorf("cluster: need at least one cycle")
	}
	if batteryJoules <= 0 {
		return nil, fmt.Errorf("cluster: non-positive battery capacity")
	}
	n := c.Sensors()
	batteries := make([]*energy.Battery, n+1)
	for v := 1; v <= n; v++ {
		batteries[v] = energy.NewBattery(p.Energy, batteryJoules)
	}
	res := &LongitudinalResult{}
	runner, err := NewRunner(c, p)
	if err != nil {
		return nil, err
	}
	dead := make([]bool, n+1)
	alive := n

	for cycle := 0; cycle < maxCycles; cycle++ {
		if float64(alive) < minAliveFraction*float64(n) {
			break
		}
		cr, err := runner.RunCycle()
		if err != nil {
			return nil, err
		}
		res.Cycles++
		res.End += p.Cycle
		res.DeliveredTotal += cr.Delivered
		res.OfferedTotal += cr.Offered

		// Drain batteries by this cycle's profiles.
		var newlyDead []int
		for v := 1; v <= n; v++ {
			if dead[v] {
				continue
			}
			prof := cr.Profiles[v]
			batteries[v].Draw(energy.Tx, prof.InTx)
			batteries[v].Draw(energy.Rx, prof.InRx)
			batteries[v].Draw(energy.Idle, prof.InIdle)
			batteries[v].Draw(energy.Sleep, prof.SleepTime())
			if batteries[v].Depleted() {
				newlyDead = append(newlyDead, v)
			}
		}
		if len(newlyDead) == 0 {
			continue
		}
		// Kill and re-plan.
		for _, v := range newlyDead {
			dead[v] = true
			alive--
			c.MarkFailed(v)
		}
		runner, err = NewRunner(c, p)
		if err != nil {
			return nil, err
		}
		for _, v := range newlyDead {
			ev := DeathEvent{Sensor: v, Cycle: cycle, At: res.End}
			for _, s := range runner.Unreachable {
				if !dead[s] {
					ev.Stranded = append(ev.Stranded, s)
				}
			}
			res.Deaths = append(res.Deaths, ev)
			if res.FirstDeath == 0 {
				res.FirstDeath = res.End
			}
		}
	}
	for v := 1; v <= n; v++ {
		if !dead[v] {
			res.AliveAtEnd++
		}
	}
	return res, nil
}

// DeliveredFraction is the run-wide delivery ratio over live sensors'
// offered packets.
func (r *LongitudinalResult) DeliveredFraction() float64 {
	if r.OfferedTotal == 0 {
		return 1
	}
	return float64(r.DeliveredTotal) / float64(r.OfferedTotal)
}
