package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ReplaySchedule plays a pipelined polling schedule on the discrete-event
// kernel in continuous time — head poll broadcast, then the slot's data
// transmissions, slot after slot — and verifies at the physical layer that
// every scheduled reception actually decodes under accumulated
// interference. It is the bridge between the slot-synchronous abstraction
// the scheduler works in and the event-level radio model: a schedule that
// validates here can be executed verbatim by real slot timing.
//
// It returns the replay's wall duration and an error describing the first
// physical violation, if any.
func ReplaySchedule(c *topo.Cluster, sched *core.Schedule, p Params) (time.Duration, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	eng := &sim.Engine{}
	med := c.Med
	pollT := p.txTime(p.PollBytes)
	dataT := p.txTime(p.DataBytes)
	slotDur := pollT + dataT

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			eng.Stop()
		}
	}

	for s, group := range sched.Slots {
		s, group := s, group
		slotStart := time.Duration(s) * slotDur
		// The head's poll broadcast opens the slot. Every sensor must be
		// able to decode it on a quiet channel (the head's power covers
		// the cluster); interference inside the slot cannot overlap it
		// because data transmissions wait for the broadcast to end.
		eng.At(slotStart, func() {
			for v := 1; v < med.N(); v++ {
				if c.Level[v] > 0 && !med.InRange(topo.Head, v) {
					fail(fmt.Errorf("cluster: slot %d: sensor %d cannot hear the poll broadcast", s, v))
					return
				}
			}
		})
		// Data transmissions start together after the broadcast and
		// overlap in time; SINR with the full concurrent set decides
		// reception.
		eng.At(slotStart+pollT, func() {
			for i := range group {
				if !med.Receives(group, i) {
					fail(fmt.Errorf("cluster: slot %d: transmission %v fails under accumulated interference (group %v)",
						s, group[i], group))
					return
				}
			}
		})
	}
	total := time.Duration(len(sched.Slots)) * slotDur
	eng.Run(total)
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// ReplayCycleSchedules builds one cycle's data schedule exactly as the
// runner would (same routes, same requests, lossless) and replays it,
// returning the schedule, the replay duration, and any physical violation.
// A convenience for verification tools and tests.
func ReplayCycleSchedules(c *topo.Cluster, p Params) (*core.Schedule, time.Duration, error) {
	r, err := NewRunner(c, p)
	if err != nil {
		return nil, 0, err
	}
	routes := r.Plan.CycleRoutes(0)
	var reqs []core.Request
	id := 0
	for v := 1; v <= c.Sensors(); v++ {
		if c.Level[v] <= 0 {
			continue
		}
		for k := 0; k < r.demand[v]; k++ {
			id++
			reqs = append(reqs, core.Request{ID: id, Route: routes[v]})
		}
	}
	sched, _, err := core.Greedy(reqs, core.Options{Oracle: r.Oracle})
	if err != nil {
		return nil, 0, err
	}
	if err := core.Validate(sched, reqs, radio.SINROracle{M: c.Med}); err != nil {
		return nil, 0, fmt.Errorf("cluster: schedule invalid before replay: %w", err)
	}
	d, err := ReplaySchedule(c, sched, p)
	return sched, d, err
}
