package cluster

import (
	"testing"
	"time"

	"repro/internal/topo"
)

func TestRunLongitudinalDecaysAndReplans(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(20, 149))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.RateBps = 60
	p.LossProb = 0
	p.Cycle = 2 * time.Second
	// A battery small enough to die within the test run: the busiest
	// relay draws tens of mW while awake.
	res, err := RunLongitudinal(c, p, 0.08, 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) == 0 {
		t.Fatal("expected battery deaths within the run")
	}
	if res.FirstDeath == 0 || res.FirstDeath > res.End {
		t.Fatalf("first death at %v, end %v", res.FirstDeath, res.End)
	}
	// Deaths in chronological order.
	for i := 1; i < len(res.Deaths); i++ {
		if res.Deaths[i].At < res.Deaths[i-1].At {
			t.Fatal("deaths out of order")
		}
	}
	// Every delivered cycle delivered fully (re-planning keeps 100%
	// delivery for live, reachable sensors).
	if res.DeliveredFraction() != 1 {
		t.Fatalf("delivered fraction %v", res.DeliveredFraction())
	}
	if res.AliveAtEnd >= 20 {
		t.Fatal("some sensors should be dead")
	}
	if res.AliveAtEnd+len(res.Deaths) != 20 {
		t.Fatalf("alive %d + dead %d != 20", res.AliveAtEnd, len(res.Deaths))
	}
}

func TestRunLongitudinalStopsAtAliveFloor(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(15, 151))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.RateBps = 60
	p.LossProb = 0
	p.Cycle = 2 * time.Second
	// Sector mode staggers awake time across sectors, so deaths spread
	// over many cycles instead of hitting all at once.
	p.UseSectors = true
	res, err := RunLongitudinal(c, p, 0.05, 10_000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// The floor (80% alive) must stop the run well before 10k cycles.
	if res.Cycles >= 10_000 {
		t.Fatal("run never stopped")
	}
	if res.AliveAtEnd == 0 {
		t.Fatal("floor should leave survivors")
	}
}

func TestRunLongitudinalValidation(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(5, 157))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLongitudinal(c, DefaultParams(), 1, 0, 0); err == nil {
		t.Error("zero cycles should error")
	}
	if _, err := RunLongitudinal(c, DefaultParams(), 0, 1, 0); err == nil {
		t.Error("zero battery should error")
	}
}

func TestRunLongitudinalSectorsLastLonger(t *testing.T) {
	c1, err := topo.Build(topo.DefaultConfig(25, 163))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := topo.Build(topo.DefaultConfig(25, 163))
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultParams()
	base.RateBps = 40
	base.LossProb = 0
	base.Cycle = 2 * time.Second
	sec := base
	sec.UseSectors = true

	plain, err := RunLongitudinal(c1, base, 0.15, 2000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	sectored, err := RunLongitudinal(c2, sec, 0.15, 2000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FirstDeath == 0 || sectored.FirstDeath == 0 {
		t.Skip("batteries outlived the horizon; raise rate or shrink batteries")
	}
	// Fig. 7(c) longitudinally: sectors delay the first death.
	if sectored.FirstDeath <= plain.FirstDeath {
		t.Fatalf("sectored first death %v should come after plain %v",
			sectored.FirstDeath, plain.FirstDeath)
	}
}
