// Package cluster is the slot-level runtime of one polling cluster: it
// orchestrates the duty cycle the paper describes in Section II — wake-up
// broadcast, acknowledgment collection (Section V-F, via weighted set
// cover over relaying paths), the pipelined data polling phase (the core
// greedy scheduler), and the sleep broadcast — and accounts every sensor's
// radio time and energy. Sector mode (Section IV) wakes sectors in turn so
// each sensor idles only through its own sector's window.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/sector"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Params configures a cluster runtime.
type Params struct {
	// M is the compatibility degree: the head only knows interference
	// patterns of groups of at most M transmissions (paper: 2 or 3).
	M int
	// BandwidthBps is the radio bit rate (paper: 200 kbps).
	BandwidthBps float64
	// DataBytes is the fixed data packet size (paper: 80 bytes).
	DataBytes int
	// PollBytes sizes the head's per-slot polling broadcast, which names
	// the slot's senders and receivers.
	PollBytes int
	// AckBytes sizes the acknowledgment packets of the wake-up phase.
	AckBytes int
	// Cycle is the period between wake-ups.
	Cycle time.Duration
	// RateBps is each sensor's data generation rate in bytes/second.
	RateBps float64
	// LossProb is the per-transmission loss probability.
	LossProb float64
	// Seed drives workload and loss randomness.
	Seed int64
	// Energy is the sensor power model.
	Energy energy.Model
	// UseSectors enables sector partitioning.
	UseSectors bool
	// Search picks the routing delta search strategy.
	Search routing.DeltaSearch
	// AllowDelay switches the scheduler to the delay-allowed variant
	// (ablation; Theorem 2 says it cannot help).
	AllowDelay bool
	// EarlySleep releases a sensor to sleep as soon as all packets it
	// sources or relays have been received — the Section IV observation
	// ("if a sensor will not be involved in transmissions occurred
	// later, it can enter the sleep mode immediately") that motivates
	// sectors. Idealized: the head signals the release in its poll
	// broadcasts.
	EarlySleep bool
	// LinkLoss derives per-hop loss probabilities from each link's SNR
	// margin (radio.Quality) instead of the uniform LossProb; LossProb
	// still applies as a floor.
	LinkLoss bool
	// SourceRouting makes every data packet carry its full relaying path
	// in a header (Section V-C); the data slot grows by the longest
	// route's header. The default is the equivalent one-hop dependent
	// table, which costs sensor memory instead of airtime.
	SourceRouting bool
	// PoissonTraffic replaces periodic CBR sampling with Poisson packet
	// arrivals of the same mean rate (event-driven sensing).
	PoissonTraffic bool
}

// DefaultParams returns the paper-flavored defaults.
func DefaultParams() Params {
	return Params{
		M:            3,
		BandwidthBps: 200_000,
		DataBytes:    80,
		PollBytes:    80, // the slot assignment lists are packet-sized
		AckBytes:     16,
		Cycle:        4 * time.Second,
		RateBps:      20,
		LossProb:     0.02,
		Energy:       energy.DefaultModel(),
	}
}

// Sentinel validation errors. Validate wraps them with the offending
// values, so callers branch with errors.Is while messages stay specific.
var (
	// ErrBadM flags a compatibility degree below 1.
	ErrBadM = errors.New("compatibility degree M must be >= 1")
	// ErrBadRadio flags non-positive bandwidth or packet sizes.
	ErrBadRadio = errors.New("non-positive radio parameters")
	// ErrBadCycle flags a non-positive cycle period.
	ErrBadCycle = errors.New("non-positive cycle")
	// ErrBadRate flags a negative data generation rate.
	ErrBadRate = errors.New("negative data rate")
	// ErrBadLoss flags a loss probability outside [0, 1).
	ErrBadLoss = errors.New("loss probability outside [0, 1)")
)

// Validate checks the parameters, returning the first violation wrapped
// around its sentinel (ErrBadM, ErrBadRadio, ...). NewRunner,
// RunLongitudinal and ReplaySchedule surface these errors unchanged.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("cluster: M = %d: %w", p.M, ErrBadM)
	}
	if p.BandwidthBps <= 0 || p.DataBytes <= 0 || p.PollBytes <= 0 || p.AckBytes <= 0 {
		return fmt.Errorf("cluster: bandwidth %g Bps, data %d B, poll %d B, ack %d B: %w",
			p.BandwidthBps, p.DataBytes, p.PollBytes, p.AckBytes, ErrBadRadio)
	}
	if p.Cycle <= 0 {
		return fmt.Errorf("cluster: cycle %v: %w", p.Cycle, ErrBadCycle)
	}
	if p.RateBps < 0 {
		return fmt.Errorf("cluster: rate %g Bps: %w", p.RateBps, ErrBadRate)
	}
	if p.LossProb < 0 || p.LossProb >= 1 {
		return fmt.Errorf("cluster: loss probability %g: %w", p.LossProb, ErrBadLoss)
	}
	return nil
}

func (p Params) txTime(bytes int) time.Duration {
	return time.Duration(float64(bytes*8) / p.BandwidthBps * float64(time.Second))
}

// dataSlot is the full length of one polling slot: the head's polling
// broadcast followed by one data packet transmission.
func (p Params) dataSlot() time.Duration { return p.txTime(p.PollBytes) + p.txTime(p.DataBytes) }

// ackSlot is one acknowledgment-collection slot.
func (p Params) ackSlot() time.Duration { return p.txTime(p.PollBytes) + p.txTime(p.AckBytes) }

// Runner simulates one cluster cycle by cycle.
type Runner struct {
	C    *topo.Cluster
	P    Params
	Plan *routing.Plan
	// Part is the sector partition (nil without sectors).
	Part   *sector.Partition
	Oracle *radio.TestedOracle
	gen    workload.Generator
	demand []int
	// groups lists the sensor groups that wake in turn: one group of all
	// sensors without sectors, or one per sector.
	groups [][]int
	// groupRoutes[g][v] is sensor v's relaying path when group g is up.
	groupRoutes []map[int][]int
	// Unreachable lists sensors without a relaying path to the head
	// (failed sensors, or sensors stranded by failures); they take no
	// part in cycles.
	Unreachable []int
	// Trace, when non-nil, records every data-phase transmission, loss
	// and arrival of subsequent cycles for offline analysis.
	Trace *trace.Log
	// Obs, when non-nil, receives per-cycle metrics after every RunCycle:
	// phase durations, slot counts, re-polls, losses, packets and energy
	// drawn per radio state (series named by the Metric* constants). A nil
	// Obs costs one branch per cycle.
	Obs      obs.Observer
	cycleIdx int
	// scr, when non-nil, donates the polling-phase buffers; it is bypassed
	// while Trace is set, because traces retain schedules and requests.
	scr *RunnerScratch
}

// NewRunner plans routing (and sectors when enabled) for the cluster and
// returns a ready runtime.
func NewRunner(c *topo.Cluster, p Params) (*Runner, error) {
	return NewRunnerCached(c, p, nil)
}

// NewRunnerCached is NewRunner with a routing plan cache: when cache holds
// a plan for the cluster's current connectivity revision and demand, the
// flow solve is skipped and the cached plan reused. The plan is a pure
// function of (connectivity, demand, search), so a hit changes nothing
// about the runner's behavior — cached and freshly solved runners are
// byte-identical. A nil cache plans from scratch every time.
func NewRunnerCached(c *topo.Cluster, p Params, cache *routing.PlanCache) (*Runner, error) {
	return NewRunnerScratch(c, p, cache, nil)
}

// NewRunnerScratch is NewRunnerCached with an optional per-cluster
// RunnerScratch donating reusable buffers. The runner behaves identically
// to a scratch-free build; it is valid until the next runner is built
// with the same scratch.
func NewRunnerScratch(c *topo.Cluster, p Params, cache *routing.PlanCache, scr *RunnerScratch) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := c.Sensors()
	cbr := workload.NewCBR(n, p.RateBps, p.DataBytes)
	var gen workload.Generator = cbr
	if p.PoissonTraffic {
		gen = workload.NewPoisson(n, p.RateBps, p.DataBytes, p.Seed^0x50a550a5)
	}
	var demand []int
	var unreachable []int
	if scr != nil {
		if cap(scr.demand) >= n+1 {
			scr.demand = scr.demand[:n+1]
			clear(scr.demand)
		} else {
			scr.demand = make([]int, n+1)
		}
		demand = scr.demand
		unreachable = scr.unreachable[:0]
	} else {
		demand = make([]int, n+1)
	}
	for v := 1; v <= n; v++ {
		if c.Level[v] > 0 {
			demand[v] = cbr.PlanningDemand(p.Cycle)
		} else {
			// Failed or stranded sensors (topo.Cluster.MarkFailed) take
			// no part in the cluster.
			unreachable = append(unreachable, v)
		}
	}
	if scr != nil {
		scr.unreachable = unreachable
	}
	plan := cache.Lookup(c.ConnectivityRev(), demand, p.Search)
	if plan == nil {
		var ws *routing.Workspace
		if scr != nil {
			ws = &scr.ws
		}
		var err error
		plan, err = routing.BalancedPathsWS(ws, c.G, topo.Head, demand, p.Search)
		if err != nil {
			return nil, fmt.Errorf("cluster: routing failed: %w", err)
		}
		cache.Store(c.ConnectivityRev(), demand, p.Search, plan)
	}
	var oracle *radio.TestedOracle
	if scr != nil && scr.oracle != nil {
		scr.oracle.Reset(radio.SINROracle{M: c.Med}, p.M)
		oracle = scr.oracle
	} else {
		oracle = radio.NewTestedOracle(radio.SINROracle{M: c.Med}, p.M)
		if scr != nil {
			scr.oracle = oracle
		}
	}
	r := &Runner{
		C:           c,
		P:           p,
		Plan:        plan,
		Oracle:      oracle,
		gen:         gen,
		demand:      demand,
		Unreachable: unreachable,
		scr:         scr,
	}
	if p.UseSectors {
		part, err := sector.BuildPartition(c.G, topo.Head, plan.CycleRoutes(0), demand,
			sector.Options{Oracle: r.Oracle})
		if err != nil {
			return nil, fmt.Errorf("cluster: sector partition failed: %w", err)
		}
		r.Part = part
		for _, sec := range part.Sectors {
			r.groups = append(r.groups, sec)
			routes := make(map[int][]int, len(sec))
			for _, v := range sec {
				routes[v] = treePath(part.Parent, v, topo.Head)
			}
			r.groupRoutes = append(r.groupRoutes, routes)
		}
	} else {
		var all []int
		if scr != nil {
			all = scr.all[:0]
		} else {
			all = make([]int, 0, n)
		}
		for v := 1; v <= n; v++ {
			if c.Level[v] > 0 {
				all = append(all, v)
			}
		}
		if scr != nil {
			scr.all = all
			scr.groups = append(scr.groups[:0], all)
			r.groups = scr.groups
		} else {
			r.groups = [][]int{all}
		}
		r.groupRoutes = nil // resolved per cycle from the rotation
	}
	return r, nil
}

func treePath(parent []int, v, head int) []int {
	path := []int{v}
	for x := v; x != head; {
		x = parent[x]
		path = append(path, x)
	}
	return path
}

// CycleResult reports one duty cycle.
type CycleResult struct {
	// Offered and Delivered count data packets; polling delivers all of
	// them whenever the duty fits in the cycle.
	Offered, Delivered int
	// AckSlots and DataSlots are summed over groups.
	AckSlots, DataSlots int
	// Duty is the total awake span of the cluster (sum of group windows).
	Duty time.Duration
	// PhaseWake, PhaseAck, PhaseData and PhaseSleep decompose Duty into
	// the duty cycle's four phases, summed over groups: the wake-up
	// broadcast, acknowledgment collection, the pipelined data polling,
	// and the sleep broadcast.
	PhaseWake, PhaseAck, PhaseData, PhaseSleep time.Duration
	// Fits reports whether the duty fit into the cycle; when false the
	// cluster is over capacity and Delivered is scaled down.
	Fits bool
	// Retries counts loss-induced re-polls.
	Retries int
	// Profiles[v] is sensor v's radio time budget this cycle (index 0 is
	// the mains-powered head and is left zero).
	Profiles []energy.CycleProfile
	// ActiveFraction is the mean per-sensor awake fraction — the paper's
	// Fig. 7(a) metric.
	ActiveFraction float64
	// OracleTests is the cumulative number of interference groups the
	// head has tested so far (Section IV's sector benefit).
	OracleTests int
	// MeanLatency and MaxLatency measure how long delivered packets
	// waited from their group's first data slot to arrival at the head.
	MeanLatency, MaxLatency time.Duration

	latSlotSum   float64 // accumulated mean-latency * packets, in seconds
	latMaxHolder time.Duration
	latCount     int
}

// RunCycle simulates the next duty cycle.
func (r *Runner) RunCycle() (*CycleResult, error) {
	p := r.P
	n := r.C.Sensors()
	idx := r.cycleIdx
	r.cycleIdx++

	packets := r.gen.NextCycle(p.Cycle)
	for _, v := range r.Unreachable {
		packets[v-1] = 0 // failed sensors generate nothing
	}
	res := &CycleResult{
		Profiles: make([]energy.CycleProfile, n+1),
		Fits:     true,
	}
	for i := range res.Profiles {
		res.Profiles[i].Cycle = p.Cycle
	}
	for _, k := range packets {
		res.Offered += k
	}

	var rotation map[int][]int
	if r.Part == nil {
		rotation = r.Plan.CycleRoutes(idx)
	}

	loss := core.LossFn(nil)
	switch {
	case p.LinkLoss:
		med := r.C.Med
		floor := p.LossProb
		loss = core.ProbLoss(p.Seed+int64(idx)*7919, func(tx radio.Transmission) float64 {
			if q := med.Quality(tx.From, tx.To).LossProb; q > floor {
				return q
			}
			return floor
		})
	case p.LossProb > 0:
		loss = core.RandomLoss(p.Seed+int64(idx)*7919, p.LossProb)
	}

	for g, group := range r.groups {
		routes := rotation
		if r.Part != nil {
			routes = r.groupRoutes[g]
		}
		window, err := r.runGroup(group, routes, packets, loss, res)
		if err != nil {
			return nil, err
		}
		res.Duty += window
	}
	if res.latCount > 0 {
		res.MeanLatency = time.Duration(res.latSlotSum / float64(res.latCount) * float64(time.Second))
		res.MaxLatency = res.latMaxHolder
	}
	res.Delivered = res.Offered
	if res.Duty > p.Cycle {
		res.Fits = false
		res.Delivered = int(float64(res.Offered) * float64(p.Cycle) / float64(res.Duty))
	}
	// Active fraction: mean over sensors of their own awake window.
	sum := 0.0
	for v := 1; v <= n; v++ {
		sum += res.Profiles[v].ActiveFraction()
	}
	if n > 0 {
		res.ActiveFraction = sum / float64(n)
	}
	res.OracleTests = r.Oracle.Tests
	if r.Obs != nil {
		r.emit(res)
	}
	return res, nil
}

// runGroup executes one group's window: wake broadcast, ack collection,
// data polling, sleep broadcast. It fills in the group's sensor profiles
// and returns the window length.
func (r *Runner) runGroup(group []int, routes map[int][]int, packets []int,
	loss core.LossFn, res *CycleResult) (time.Duration, error) {
	p := r.P
	scr := r.scr
	if r.Trace != nil {
		scr = nil // traced runs retain schedules and requests
	}
	var ackScratch, dataScratch *core.GreedyScratch
	if scr != nil {
		ackScratch, dataScratch = &scr.ack, &scr.data
	}

	// --- acknowledgment collection (Section V-F) ---
	ackReqs, err := r.ackRequests(scr, group, routes)
	if err != nil {
		return 0, err
	}
	ackSched, ackStats, err := core.Greedy(ackReqs, core.Options{
		Oracle: r.Oracle, Loss: loss, AllowDelay: p.AllowDelay, Scratch: ackScratch,
	})
	if err != nil {
		return 0, fmt.Errorf("cluster: ack polling failed: %w", err)
	}

	// --- data polling ---
	var dataReqs []core.Request
	if scr != nil {
		dataReqs = scr.dataReqs[:0]
	}
	id := 0
	for _, v := range group {
		route, ok := routes[v]
		if !ok {
			return 0, fmt.Errorf("cluster: sensor %d has no route", v)
		}
		for k := 0; k < packets[v-1]; k++ {
			id++
			dataReqs = append(dataReqs, core.Request{ID: id, Route: route})
		}
	}
	if scr != nil {
		scr.dataReqs = dataReqs
	}
	dataSched, dataStats, err := core.Greedy(dataReqs, core.Options{
		Oracle: r.Oracle, Loss: loss, AllowDelay: p.AllowDelay, Scratch: dataScratch,
	})
	if err != nil {
		return 0, fmt.Errorf("cluster: data polling failed: %w", err)
	}

	ackSlots, dataSlots := ackSched.Makespan(), dataSched.Makespan()
	res.AckSlots += ackSlots
	res.DataSlots += dataSlots
	res.Retries += ackStats.Retries + dataStats.Retries

	pollT := p.txTime(p.PollBytes)
	ackT := p.txTime(p.AckBytes)
	// Source routing grows every data packet by the group's longest
	// route header; the slot must fit the largest packet.
	dataBytes := p.DataBytes
	if p.SourceRouting {
		maxRoute := 0
		for _, v := range group {
			if l := len(routes[v]); l > maxRoute {
				maxRoute = l
			}
		}
		dataBytes += routing.SourceRouteBytes(maxRoute)
	}
	dataT := p.txTime(dataBytes)
	dataSlotDur := pollT + dataT
	ackSlotDur := p.ackSlot()

	if r.Trace != nil {
		r.Trace.AppendSchedule(r.cycleIdx-1, dataSched, dataReqs, loss)
	}

	// Packet latency: time from the group's first data slot to arrival.
	for _, lat := range trace.Latencies(dataSched) {
		d := time.Duration(lat) * dataSlotDur
		res.latSlotSum += d.Seconds()
		res.latCount++
		if d > res.latMaxHolder {
			res.latMaxHolder = d
		}
	}
	// Window: wake broadcast + ack slots + data slots + sleep broadcast.
	window := pollT + time.Duration(ackSlots)*ackSlotDur +
		time.Duration(dataSlots)*dataSlotDur + pollT
	res.PhaseWake += pollT
	res.PhaseAck += time.Duration(ackSlots) * ackSlotDur
	res.PhaseData += time.Duration(dataSlots) * dataSlotDur
	res.PhaseSleep += pollT

	// Per-sensor accounting. By default every group sensor is awake for
	// the whole window, receiving every head broadcast (wake, per-slot
	// polls, sleep), transmitting/receiving its scheduled packets, and
	// idling the rest. With EarlySleep the head releases a sensor right
	// after its last involvement in the data phase (or right after the
	// ack phase if it has nothing to send or relay).
	for _, v := range group {
		prof := &res.Profiles[v]
		awake := window
		polls := ackSlots + dataSlots + 2
		if p.EarlySleep {
			lastData, active := dataStats.LastActive[v]
			if !active {
				lastData = -1
			}
			awake = pollT + time.Duration(ackSlots)*ackSlotDur +
				time.Duration(lastData+1)*dataSlotDur
			polls = 1 + ackSlots + lastData + 1
		}
		tx := time.Duration(dataStats.TxCount[v])*dataT + time.Duration(ackStats.TxCount[v])*ackT
		rx := time.Duration(dataStats.RxCount[v])*dataT + time.Duration(ackStats.RxCount[v])*ackT +
			time.Duration(polls)*pollT
		idle := awake - tx - rx
		if idle < 0 {
			idle = 0
		}
		prof.InTx += tx
		prof.InRx += rx
		prof.InIdle += idle
	}
	return window, nil
}

// ackRequests builds the acknowledgment polling requests for a group: a
// minimum-cost set of relaying paths covering every group sensor (greedy
// weighted set cover, costs = hop counts), one ack packet per chosen path
// starting at the path's first sensor. A non-nil scratch donates the
// cover's input and output buffers.
func (r *Runner) ackRequests(scr *RunnerScratch, group []int, routes map[int][]int) ([]core.Request, error) {
	var indexOf map[int]int
	var subsets []graph.Subset
	var paths [][]int
	if scr != nil {
		if scr.indexOf == nil {
			scr.indexOf = make(map[int]int, len(group))
		} else {
			clear(scr.indexOf)
		}
		indexOf = scr.indexOf
		subsets = scr.subsets[:0]
		paths = scr.paths[:0]
	} else {
		indexOf = make(map[int]int, len(group))
		subsets = make([]graph.Subset, 0, len(group))
		paths = make([][]int, 0, len(group))
	}
	for i, v := range group {
		indexOf[v] = i
	}
	for _, v := range group {
		route := routes[v]
		if route == nil {
			if scr != nil {
				scr.subsets, scr.paths = subsets, paths
			}
			return nil, fmt.Errorf("cluster: sensor %d has no candidate ack path", v)
		}
		var elems []int
		subsets, elems = appendSubset(subsets)
		for _, x := range route[:len(route)-1] {
			if i, ok := indexOf[x]; ok {
				elems = append(elems, i)
			}
		}
		subsets[len(subsets)-1] = graph.Subset{Elements: elems, Cost: float64(len(route) - 1)}
		paths = append(paths, route)
	}
	if scr != nil {
		scr.subsets, scr.paths = subsets, paths
	}
	chosen, _, err := graph.GreedySetCover(len(group), subsets)
	if err != nil {
		return nil, fmt.Errorf("cluster: ack cover failed: %w", err)
	}
	var reqs []core.Request
	if scr != nil {
		reqs = scr.ackReqs[:0]
	} else {
		reqs = make([]core.Request, 0, len(chosen))
	}
	for i, c := range chosen {
		reqs = append(reqs, core.Request{ID: i + 1, Route: paths[c]})
	}
	if scr != nil {
		scr.ackReqs = reqs
	}
	return reqs, nil
}

// Summary aggregates many cycles.
type Summary struct {
	Cycles        int
	Offered       int
	Delivered     int
	Retries       int
	MeanActive    float64 // mean per-sensor active fraction
	MeanAckSlots  float64
	MeanDataSlots float64
	MeanDuty      time.Duration
	AllFit        bool
	MeanProfiles  []energy.CycleProfile // per node, averaged
	OracleTests   int
}

// Run simulates the given number of cycles and aggregates.
func (r *Runner) Run(cycles int) (*Summary, error) {
	if cycles < 1 {
		return nil, fmt.Errorf("cluster: need at least one cycle")
	}
	n := r.C.Sensors()
	s := &Summary{Cycles: cycles, AllFit: true,
		MeanProfiles: make([]energy.CycleProfile, n+1)}
	for i := range s.MeanProfiles {
		s.MeanProfiles[i].Cycle = r.P.Cycle
	}
	var activeSum float64
	var ackSum, dataSum int
	var dutySum time.Duration
	for i := 0; i < cycles; i++ {
		res, err := r.RunCycle()
		if err != nil {
			return nil, err
		}
		s.Offered += res.Offered
		s.Delivered += res.Delivered
		s.Retries += res.Retries
		activeSum += res.ActiveFraction
		ackSum += res.AckSlots
		dataSum += res.DataSlots
		dutySum += res.Duty
		s.AllFit = s.AllFit && res.Fits
		for v := range s.MeanProfiles {
			s.MeanProfiles[v].InTx += res.Profiles[v].InTx
			s.MeanProfiles[v].InRx += res.Profiles[v].InRx
			s.MeanProfiles[v].InIdle += res.Profiles[v].InIdle
		}
		s.OracleTests = res.OracleTests
	}
	for v := range s.MeanProfiles {
		s.MeanProfiles[v].InTx /= time.Duration(cycles)
		s.MeanProfiles[v].InRx /= time.Duration(cycles)
		s.MeanProfiles[v].InIdle /= time.Duration(cycles)
	}
	s.MeanActive = activeSum / float64(cycles)
	s.MeanAckSlots = float64(ackSum) / float64(cycles)
	s.MeanDataSlots = float64(dataSum) / float64(cycles)
	s.MeanDuty = dutySum / time.Duration(cycles)
	return s, nil
}

// String renders the summary as a compact human-readable report.
func (s *Summary) String() string {
	return fmt.Sprintf(
		"cycles %d: delivered %d/%d (%.0f%%), mean active %.2f%%, mean duty %v (ack %.1f + data %.1f slots), retries %d",
		s.Cycles, s.Delivered, s.Offered, s.DeliveredFraction()*100,
		s.MeanActive*100, s.MeanDuty.Round(time.Millisecond),
		s.MeanAckSlots, s.MeanDataSlots, s.Retries)
}

// LevelBreakdown is the per-hop-level view of a summary: how sensors at
// each distance from the head spend their radios. Inner (level-1) sensors
// relay everyone behind them, so their transmit share — and power draw —
// is the cluster's lifetime bottleneck; this is what the min-max routing
// of Section III-A balances.
type LevelBreakdown struct {
	Level   int
	Sensors int
	// MeanTx/MeanRx/MeanIdle are mean per-cycle radio times.
	MeanTx, MeanRx, MeanIdle time.Duration
	// MeanPower is the mean steady-state draw in watts under the model.
	MeanPower float64
}

// ByLevel groups the summary's mean profiles by hop level.
func (s *Summary) ByLevel(c *topo.Cluster, m energy.Model) []LevelBreakdown {
	agg := map[int]*LevelBreakdown{}
	for v := 1; v < len(s.MeanProfiles); v++ {
		l := c.Level[v]
		if l <= 0 {
			continue
		}
		b := agg[l]
		if b == nil {
			b = &LevelBreakdown{Level: l}
			agg[l] = b
		}
		b.Sensors++
		p := s.MeanProfiles[v]
		b.MeanTx += p.InTx
		b.MeanRx += p.InRx
		b.MeanIdle += p.InIdle
		b.MeanPower += energy.AveragePower(m, p)
	}
	var out []LevelBreakdown
	for l := 1; ; l++ {
		b, ok := agg[l]
		if !ok {
			break
		}
		n := time.Duration(b.Sensors)
		b.MeanTx /= n
		b.MeanRx /= n
		b.MeanIdle /= n
		b.MeanPower /= float64(b.Sensors)
		out = append(out, *b)
	}
	return out
}

// DeliveredFraction is the throughput as a fraction of offered load.
func (s *Summary) DeliveredFraction() float64 {
	if s.Offered == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Offered)
}

// Lifetime returns the cluster lifetime — the time until the first sensor
// exhausts a battery of the given capacity at its mean per-cycle power —
// the Fig. 7(c) metric.
func (s *Summary) Lifetime(m energy.Model, batteryJoules float64) time.Duration {
	min := time.Duration(0)
	for v := 1; v < len(s.MeanProfiles); v++ {
		lt := energy.Lifetime(m, s.MeanProfiles[v], batteryJoules)
		if min == 0 || lt < min {
			min = lt
		}
	}
	return min
}

// TokenRotationCycle returns the minimum cycle length for a field of
// clusters that removes inter-cluster interference by transmitting one
// cluster at a time (Section V-G's token scheme).
func TokenRotationCycle(duties []time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range duties {
		sum += d
	}
	return sum
}

// ColoredCycle returns the minimum cycle length when clusters are assigned
// radio channels by the given coloring: clusters sharing a channel
// serialize, different channels run concurrently.
func ColoredCycle(duties []time.Duration, colors []int) (time.Duration, error) {
	if len(duties) != len(colors) {
		return 0, fmt.Errorf("cluster: %d duties vs %d colors", len(duties), len(colors))
	}
	perColor := make(map[int]time.Duration)
	for i, d := range duties {
		perColor[colors[i]] += d
	}
	var max time.Duration
	for _, d := range perColor {
		if d > max {
			max = d
		}
	}
	return max, nil
}
