package cluster

import (
	"testing"

	"repro/internal/topo"
)

// pickRelay returns a sensor that currently relays traffic for others (a
// first-level sensor with dependents), or 0 if none exists.
func pickRelay(r *Runner) int {
	routes := r.Plan.CycleRoutes(0)
	counts := map[int]int{}
	for v, route := range routes {
		for _, x := range route[1 : len(route)-1] {
			_ = v
			counts[x]++
		}
	}
	best, bestCount := 0, 0
	for x, c := range counts {
		if c > bestCount {
			best, bestCount = x, c
		}
	}
	return best
}

func TestRelayFailureRePlanning(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(30, 83))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	p.RateBps = 20
	before, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickRelay(before)
	if victim == 0 {
		t.Skip("deployment has no multi-hop relays")
	}

	// Kill the busiest relay; rebuild and re-plan.
	c.MarkFailed(victim)
	after, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// The victim is gone from the plan and may have stranded others.
	for _, v := range after.Unreachable {
		if v == victim {
			continue
		}
		if c.Level[v] > 0 {
			t.Fatalf("sensor %d marked unreachable but has level %d", v, c.Level[v])
		}
	}
	found := false
	for _, v := range after.Unreachable {
		if v == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("failed sensor should be listed unreachable")
	}
	// No surviving route passes through the dead sensor.
	for v, route := range after.Plan.CycleRoutes(0) {
		for _, x := range route {
			if x == victim {
				t.Fatalf("route of %d still uses dead sensor %d", v, victim)
			}
		}
	}
	// The cluster still operates and delivers the survivors' packets.
	res, err := after.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Offered {
		t.Fatalf("delivered %d of %d after failure", res.Delivered, res.Offered)
	}
	// Dead sensors spend no energy.
	prof := res.Profiles[victim]
	if prof.InTx != 0 || prof.InRx != 0 || prof.InIdle != 0 {
		t.Fatalf("dead sensor has a non-empty profile: %+v", prof)
	}
}

func TestFailureWithSectors(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(30, 89))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	p.UseSectors = true
	r0, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickRelay(r0)
	if victim == 0 {
		t.Skip("no relays")
	}
	c.MarkFailed(victim)
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Offered {
		t.Fatalf("sector mode delivered %d of %d after failure", res.Delivered, res.Offered)
	}
	// Dead sensors must not appear in any sector.
	if r.Part != nil && r.Part.SectorOf(victim) != -1 {
		t.Fatal("dead sensor assigned to a sector")
	}
}

func TestHeadCannotFail(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(5, 97))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MarkFailed(topo.Head)
}

func TestReachableShrinksAfterFailure(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(20, 101))
	if err != nil {
		t.Fatal(err)
	}
	before := len(c.Reachable())
	if before != 20 {
		t.Fatalf("initially reachable = %d", before)
	}
	c.MarkFailed(5)
	after := len(c.Reachable())
	if after >= before {
		t.Fatalf("reachable %d should shrink after failure", after)
	}
}
