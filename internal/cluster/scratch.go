package cluster

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/routing"
)

// RunnerScratch holds the reusable state of one cluster's runner across
// epoch rebuilds: the tested oracle (Reset instead of reallocated, its
// learned-verdict maps keeping their buckets), the routing workspace, the
// demand and group buffers, the two greedy polling scratches (ack and
// data phases run back to back and their stats are read side by side, so
// they cannot share one), and the ack-cover and data-request buffers.
//
// The field runtime keeps one scratch per cluster and passes it to every
// NewRunnerScratch rebuild of that cluster — scratch state is strictly
// per-cluster, so the field's concurrent shard workers never share one.
// A runner built with a scratch is valid until the next runner is built
// with the same scratch. Traced runs (Runner.Trace set) automatically
// bypass the polling-phase buffers, since traces retain schedules.
type RunnerScratch struct {
	oracle      *radio.TestedOracle
	ws          routing.Workspace
	demand      []int
	unreachable []int
	all         []int
	groups      [][]int
	ack, data   core.GreedyScratch
	dataReqs    []core.Request
	// ackRequests buffers: the set-cover inputs and outputs.
	indexOf map[int]int
	subsets []graph.Subset
	paths   [][]int
	ackReqs []core.Request
}

// appendSubset extends subsets by one entry, reusing the previous run's
// Elements backing array when growing within capacity, and returns the
// slice plus the (emptied) elements buffer for the caller to fill.
func appendSubset(subsets []graph.Subset) ([]graph.Subset, []int) {
	if n := len(subsets); n < cap(subsets) {
		subsets = subsets[:n+1]
		return subsets, subsets[n].Elements[:0]
	}
	return append(subsets, graph.Subset{}), nil
}
