package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/topo"
)

func TestParamsValidateSentinels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want error
	}{
		{"valid", func(*Params) {}, nil},
		{"bad M", func(p *Params) { p.M = 0 }, ErrBadM},
		{"bad bandwidth", func(p *Params) { p.BandwidthBps = 0 }, ErrBadRadio},
		{"bad data size", func(p *Params) { p.DataBytes = -1 }, ErrBadRadio},
		{"bad poll size", func(p *Params) { p.PollBytes = 0 }, ErrBadRadio},
		{"bad ack size", func(p *Params) { p.AckBytes = 0 }, ErrBadRadio},
		{"bad cycle", func(p *Params) { p.Cycle = 0 }, ErrBadCycle},
		{"bad rate", func(p *Params) { p.RateBps = -5 }, ErrBadRate},
		{"negative loss", func(p *Params) { p.LossProb = -0.1 }, ErrBadLoss},
		{"certain loss", func(p *Params) { p.LossProb = 1 }, ErrBadLoss},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			err := p.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate = %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want errors.Is(%v)", err, tc.want)
			}
			// The wrap must keep the message specific, not just the sentinel.
			if err.Error() == tc.want.Error() {
				t.Fatalf("error %q lost the offending value", err)
			}
		})
	}
}

func TestNewRunnerSurfacesValidationError(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.M = 0
	if _, err := NewRunner(c, p); !errors.Is(err, ErrBadM) {
		t.Fatalf("NewRunner = %v, want errors.Is(ErrBadM)", err)
	}
}

func TestRunnerEmitsMetrics(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.RateBps = 40
	p.Seed = 1
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	r.Obs = reg.Observer()

	const cycles = 3
	if _, err := r.Run(cycles); err != nil {
		t.Fatal(err)
	}

	byName := map[string]obs.MetricSnapshot{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s
	}
	if got := byName[MetricCycles].Value; got != cycles {
		t.Errorf("%s = %v, want %d", MetricCycles, got, cycles)
	}
	// Every phase of the Section II duty cycle must have one sample per
	// cycle with nonzero total duration.
	for _, phase := range []string{"wake", "ack", "poll", "sleep"} {
		s := byName[obs.Series(MetricPhaseSeconds, "phase", phase)]
		if s.Count != cycles || s.Sum <= 0 {
			t.Errorf("phase %q: count=%d sum=%v", phase, s.Count, s.Sum)
		}
	}
	for _, kind := range []string{"ack", "data"} {
		if s := byName[obs.Series(MetricSlotsTotal, "kind", kind)]; s.Value <= 0 {
			t.Errorf("%s slots total = %v", kind, s.Value)
		}
		if s := byName[obs.Series(MetricSlotsPerCycle, "kind", kind)]; s.Count != cycles {
			t.Errorf("%s slots histogram count = %d", kind, s.Count)
		}
	}
	// tx/rx/idle are exercised by any polling cycle; sleep requires the
	// duty to fit, which holds at this size and rate.
	for _, state := range []string{"tx", "rx", "idle", "sleep"} {
		if s := byName[obs.Series(MetricEnergyJoules, "state", state)]; s.Value <= 0 {
			t.Errorf("energy state %q = %v", state, s.Value)
		}
	}
	if s := byName[MetricPacketsDelivered]; s.Value <= 0 {
		t.Errorf("delivered = %v", s.Value)
	}
	if s := byName[MetricActiveFraction]; s.Value <= 0 || s.Value > 1 {
		t.Errorf("active fraction = %v", s.Value)
	}
	// The greedy scheduler triggers exactly one re-poll per detected
	// loss, so the two counters must agree.
	if byName[MetricRepolls].Value != byName[MetricLosses].Value {
		t.Errorf("repolls %v != losses %v",
			byName[MetricRepolls].Value, byName[MetricLosses].Value)
	}
}

func TestRunnerNoObserverUnchanged(t *testing.T) {
	// Baseline determinism: attaching an observer must not change the
	// simulation itself, and leaving it nil must not panic anywhere.
	run := func(o obs.Observer) string {
		c, err := topo.Build(topo.DefaultConfig(15, 2))
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.Seed = 2
		r, err := NewRunner(c, p)
		if err != nil {
			t.Fatal(err)
		}
		r.Obs = o
		s, err := r.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %d %d %d %.9f",
			s.MeanDuty.Round(time.Nanosecond), s.Offered, s.Delivered,
			s.Retries, s.MeanActive)
	}
	reg := obs.NewRegistry()
	if plain, observed := run(nil), run(reg.Observer()); plain != observed {
		t.Fatalf("observer changed the run: %q vs %q", plain, observed)
	}
}
