package cluster

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/topo"
)

// Field-level simulation: many clusters operating side by side, with
// inter-cluster interference removed by channel coloring (Section V-G).
// Clusters on different channels run concurrently; clusters sharing a
// channel rotate a token, so the field's feasible cycle is bounded by the
// busiest channel's total duty.

// FieldSummary aggregates a whole field's simulation.
type FieldSummary struct {
	// Clusters is the number of non-empty clusters simulated.
	Clusters int
	// Channels is the number of radio channels the coloring used.
	Channels int
	// Colors holds each simulated cluster's channel.
	Colors []int
	// PerCluster holds each non-empty cluster's summary, in head order.
	PerCluster []*Summary
	// Stranded counts sensors with no multi-hop path to their head.
	Stranded int
	// TokenCycle is the minimum field cycle under single-token rotation;
	// ColoredCycle under the channel coloring.
	TokenCycle, ColoredCycle time.Duration
	// Lifetime is the field's first-sensor-death time at the battery
	// capacity passed to RunField.
	Lifetime time.Duration
}

// RunField simulates every non-empty cluster of the field for the given
// number of cycles under shared parameters, assigns channels by coloring
// the inter-cluster interference graph, and aggregates.
//
// interferenceRange is the sensor-to-sensor distance below which two
// clusters are considered adjacent; batteryJoules sizes the lifetime
// computation.
func RunField(f *topo.Field, cfg topo.Config, p Params, cycles int,
	interferenceRange, batteryJoules float64) (*FieldSummary, error) {
	if cycles < 1 {
		return nil, fmt.Errorf("cluster: need at least one cycle")
	}
	colors, channels := f.ChannelAssignment(interferenceRange)
	em := energy.DefaultModel()
	out := &FieldSummary{Channels: channels}
	var duties []time.Duration
	var dutyColors []int
	for k := range f.Heads {
		c, err := f.BuildCluster(k, cfg)
		if err != nil {
			return nil, err
		}
		if c.Sensors() == 0 {
			continue
		}
		r, err := NewRunner(c, p)
		if err != nil {
			return nil, fmt.Errorf("cluster %d: %w", k, err)
		}
		out.Stranded += len(r.Unreachable)
		s, err := r.Run(cycles)
		if err != nil {
			return nil, fmt.Errorf("cluster %d: %w", k, err)
		}
		out.Clusters++
		out.PerCluster = append(out.PerCluster, s)
		out.Colors = append(out.Colors, colors[k])
		duties = append(duties, s.MeanDuty)
		dutyColors = append(dutyColors, colors[k])
		if len(r.Unreachable) < c.Sensors() { // at least one live sensor
			lt := s.Lifetime(em, batteryJoules)
			if out.Lifetime == 0 || lt < out.Lifetime {
				out.Lifetime = lt
			}
		}
	}
	out.TokenCycle = TokenRotationCycle(duties)
	colored, err := ColoredCycle(duties, dutyColors)
	if err != nil {
		return nil, err
	}
	out.ColoredCycle = colored
	return out, nil
}

// FitsCycle reports whether the field sustains the given cycle length
// under its channel coloring (every channel's duty sum must fit).
func (s *FieldSummary) FitsCycle(cycle time.Duration) bool {
	return s.ColoredCycle <= cycle
}
