package cluster

import (
	"time"
)

// Field-level aggregation types: many clusters operating side by side,
// with inter-cluster interference removed by channel coloring (Section
// V-G). Clusters on different channels run concurrently; clusters
// sharing a channel rotate a token, so the field's feasible cycle is
// bounded by the busiest channel's total duty.
//
// The field *runtime* — sharded epoch execution, churn injection,
// checkpointing — lives in internal/field; its field.RunField wrapper
// replaces the sequential RunField helper that used to live here and
// returns this package's FieldSummary unchanged.

// FieldSummary aggregates a whole field's simulation.
type FieldSummary struct {
	// Clusters is the number of non-empty clusters simulated.
	Clusters int
	// Channels is the number of radio channels the coloring used.
	Channels int
	// Colors holds each simulated cluster's channel.
	Colors []int
	// PerCluster holds each non-empty cluster's summary, in head order.
	PerCluster []*Summary
	// Stranded counts sensors with no multi-hop path to their head.
	Stranded int
	// TokenCycle is the minimum field cycle under single-token rotation;
	// ColoredCycle under the channel coloring.
	TokenCycle, ColoredCycle time.Duration
	// Lifetime is the field's first-sensor-death time at the battery
	// capacity passed to field.RunField.
	Lifetime time.Duration
}

// FitsCycle reports whether the field sustains the given cycle length
// under its channel coloring (every channel's duty sum must fit).
func (s *FieldSummary) FitsCycle(cycle time.Duration) bool {
	return s.ColoredCycle <= cycle
}
