package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/topo"
)

func TestEarlySleepReducesActiveTime(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(25, 47))
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultParams()
	base.LossProb = 0
	base.RateBps = 40
	early := base
	early.EarlySleep = true

	plain, err := NewRunner(c, base)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewRunner(c, early)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := plain.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := fast.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if se.MeanActive >= sp.MeanActive {
		t.Fatalf("early sleep active %v should be below plain %v", se.MeanActive, sp.MeanActive)
	}
	// The schedule itself is unchanged: same slots, same delivery.
	if se.MeanDataSlots != sp.MeanDataSlots {
		t.Fatalf("early sleep changed the schedule: %v vs %v slots",
			se.MeanDataSlots, sp.MeanDataSlots)
	}
	if se.DeliveredFraction() != 1 {
		t.Fatalf("early sleep lost packets: %v", se.DeliveredFraction())
	}
	// And it extends lifetime.
	m := energy.DefaultModel()
	if se.Lifetime(m, 100) <= sp.Lifetime(m, 100) {
		t.Fatal("early sleep should extend lifetime")
	}
}

func TestEarlySleepComposesWithSectors(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(30, 53))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	p.RateBps = 40
	p.UseSectors = true
	p.EarlySleep = true
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("delivered %v", s.DeliveredFraction())
	}
	if s.MeanActive <= 0 {
		t.Fatal("active fraction must remain positive")
	}
}

func TestEarlySleepProfileNeverExceedsWindow(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(20, 59))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.EarlySleep = true
	p.LossProb = 0.05
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 20; v++ {
		prof := res.Profiles[v]
		total := prof.InTx + prof.InRx + prof.InIdle
		if total > res.Duty {
			t.Fatalf("sensor %d awake %v > duty %v", v, total, res.Duty)
		}
		if total <= 0 {
			t.Fatalf("sensor %d has an empty profile", v)
		}
	}
}

func TestLinkLossProducesRetries(t *testing.T) {
	// With 30 m range links near the edge are grey (radio.Quality), so
	// link-quality loss must produce retries even with a zero uniform
	// floor, and still deliver everything.
	c, err := topo.Build(topo.DefaultConfig(30, 61))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	p.LinkLoss = true
	p.RateBps = 40
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Retries == 0 {
		t.Fatal("link-quality loss should cause retries on grey links")
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("delivered %v", s.DeliveredFraction())
	}
}

func TestLinkLossRespectsFloor(t *testing.T) {
	// The uniform LossProb acts as a floor under LinkLoss: with a very
	// high floor, even solid links lose packets.
	c, err := topo.Build(topo.DefaultConfig(10, 67))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LinkLoss = true
	p.LossProb = 0.5
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("50% floor should force retries")
	}
}

func TestSectorWindowsSumToDuty(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(30, 71))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.UseSectors = true
	p.LossProb = 0
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	// Each sensor is awake only for its own sector's window; the sum of
	// distinct window lengths (weighted by one sensor each) must not
	// exceed the total duty.
	for v := 1; v <= 30; v++ {
		prof := res.Profiles[v]
		if total := prof.InTx + prof.InRx + prof.InIdle; total > res.Duty {
			t.Fatalf("sensor %d awake longer than the whole duty", v)
		}
	}
	if res.Duty > time.Duration(float64(p.Cycle)*1.5) && res.Fits {
		t.Fatal("inconsistent fit flag")
	}
}

func TestLatencyMetrics(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(20, 131))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	p.RateBps = 40
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency <= 0 || res.MaxLatency < res.MeanLatency {
		t.Fatalf("latencies: mean %v max %v", res.MeanLatency, res.MaxLatency)
	}
	// Latency is bounded by the data phase length.
	dataPhase := time.Duration(res.DataSlots) * p.dataSlot()
	if res.MaxLatency > dataPhase {
		t.Fatalf("max latency %v exceeds data phase %v", res.MaxLatency, dataPhase)
	}
}

func TestByLevelBreakdown(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(30, 137))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	p.RateBps = 40
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	levels := s.ByLevel(c, energy.DefaultModel())
	if len(levels) < 2 {
		t.Fatalf("expected multi-hop breakdown, got %d levels", len(levels))
	}
	total := 0
	for i, b := range levels {
		if b.Level != i+1 {
			t.Fatalf("levels out of order: %+v", levels)
		}
		if b.Sensors <= 0 || b.MeanPower <= 0 {
			t.Fatalf("empty breakdown: %+v", b)
		}
		total += b.Sensors
	}
	if total != 30 {
		t.Fatalf("breakdown covers %d sensors", total)
	}
	// Level-1 sensors relay everything behind them: they transmit more
	// than the outermost level.
	if levels[0].MeanTx <= levels[len(levels)-1].MeanTx {
		t.Fatalf("level 1 tx %v should exceed outermost %v",
			levels[0].MeanTx, levels[len(levels)-1].MeanTx)
	}
}

func TestPoissonTrafficDelivers(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(15, 179))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.PoissonTraffic = true
	p.RateBps = 40
	p.LossProb = 0
	p.Seed = 5
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Offered == 0 {
		t.Fatal("Poisson traffic offered nothing")
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("delivered %v", s.DeliveredFraction())
	}
	// Poisson cycles vary: data slots should not be identical each
	// cycle. Check through two independent cycles' offered counts.
	a, err := r.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	var differed bool
	for i := 0; i < 5 && !differed; i++ {
		b, err := r.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		differed = b.Offered != a.Offered
	}
	if !differed {
		t.Fatal("Poisson offered counts never varied across cycles")
	}
}

func TestSummaryString(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(10, 199))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"cycles 2", "delivered", "100%", "mean active"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q missing %q", out, want)
		}
	}
}
