package cluster

import (
	"testing"
	"time"

	"repro/internal/topo"
)

func TestRunField(t *testing.T) {
	f := topo.BuildField(11, 300, 5, 80)
	cfg := topo.DefaultConfig(0, 0) // ranges/propagation only; counts come from the field
	p := DefaultParams()
	p.RateBps = 20
	p.LossProb = 0
	s, err := RunField(f, cfg, p, 2, 80, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Clusters == 0 || s.Clusters > 5 {
		t.Fatalf("clusters = %d", s.Clusters)
	}
	if s.Channels < 1 || s.Channels > 6 {
		t.Fatalf("channels = %d", s.Channels)
	}
	if len(s.PerCluster) != s.Clusters || len(s.Colors) != s.Clusters {
		t.Fatalf("per-cluster sizes: %d summaries, %d colors", len(s.PerCluster), len(s.Colors))
	}
	// Coloring can never be worse than the token.
	if s.ColoredCycle > s.TokenCycle {
		t.Fatalf("colored %v > token %v", s.ColoredCycle, s.TokenCycle)
	}
	if s.Lifetime <= 0 {
		t.Fatal("field lifetime missing")
	}
	// Every cluster delivered everything it could reach.
	for i, cs := range s.PerCluster {
		if cs.DeliveredFraction() != 1 {
			t.Fatalf("cluster %d delivered %v", i, cs.DeliveredFraction())
		}
	}
	if !s.FitsCycle(s.ColoredCycle) {
		t.Fatal("field must fit its own colored cycle")
	}
	if s.FitsCycle(s.ColoredCycle - time.Nanosecond) {
		t.Fatal("field cannot fit below its colored cycle")
	}
}

func TestRunFieldValidation(t *testing.T) {
	f := topo.BuildField(3, 200, 2, 10)
	cfg := topo.DefaultConfig(0, 0)
	if _, err := RunField(f, cfg, DefaultParams(), 0, 80, 100); err == nil {
		t.Fatal("zero cycles should error")
	}
}

func TestBuildClusterFromField(t *testing.T) {
	f := topo.BuildField(13, 250, 4, 60)
	cfg := topo.DefaultConfig(0, 0)
	total := 0
	for k := range f.Heads {
		c, err := f.BuildCluster(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total += c.Sensors()
		// Sensors out of reach are allowed but must be flagged by level.
		for v := 1; v <= c.Sensors(); v++ {
			if c.Level[v] == 0 {
				t.Fatalf("cluster %d sensor %d has head level", k, v)
			}
		}
	}
	if total != 60 {
		t.Fatalf("field clusters hold %d sensors, want 60", total)
	}
	if _, err := f.BuildCluster(9, cfg); err == nil {
		t.Fatal("out-of-range cluster index should error")
	}
}
