package cluster

import (
	"testing"
	"time"

	"repro/internal/topo"
)

// Field-level cycle arithmetic edge cases. The runtime that exercises
// these across live fields is internal/field; here the pure helpers are
// pinned on their boundary inputs.

func TestColoredCycleSingleChannel(t *testing.T) {
	// Every cluster on one channel: coloring buys nothing, the colored
	// cycle is the full token rotation.
	duties := []time.Duration{3 * time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond}
	colors := []int{0, 0, 0}
	got, err := ColoredCycle(duties, colors)
	if err != nil {
		t.Fatal(err)
	}
	if want := TokenRotationCycle(duties); got != want {
		t.Fatalf("single channel colored cycle %v, want token cycle %v", got, want)
	}
}

func TestColoredCycleEmptyField(t *testing.T) {
	got, err := ColoredCycle(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty field colored cycle %v, want 0", got)
	}
	if TokenRotationCycle(nil) != 0 {
		t.Fatal("empty field token cycle must be 0")
	}
}

func TestColoredCycleOneClusterPerChannel(t *testing.T) {
	// Fully parallel field: the busiest single cluster sets the cycle.
	duties := []time.Duration{3 * time.Millisecond, 7 * time.Millisecond, 2 * time.Millisecond}
	colors := []int{0, 1, 2}
	got, err := ColoredCycle(duties, colors)
	if err != nil {
		t.Fatal(err)
	}
	if want := 7 * time.Millisecond; got != want {
		t.Fatalf("one-cluster-per-channel colored cycle %v, want max duty %v", got, want)
	}
}

func TestColoredCycleLengthMismatch(t *testing.T) {
	if _, err := ColoredCycle([]time.Duration{time.Millisecond}, []int{0, 1}); err == nil {
		t.Fatal("mismatched duties/colors should error")
	}
}

func TestFieldSummaryFitsCycle(t *testing.T) {
	s := &FieldSummary{ColoredCycle: 10 * time.Millisecond}
	if !s.FitsCycle(10 * time.Millisecond) {
		t.Fatal("field must fit exactly its colored cycle")
	}
	if !s.FitsCycle(time.Second) {
		t.Fatal("field must fit any longer cycle")
	}
	if s.FitsCycle(10*time.Millisecond - time.Nanosecond) {
		t.Fatal("field cannot fit below its colored cycle")
	}
	empty := &FieldSummary{}
	if !empty.FitsCycle(0) {
		t.Fatal("an empty field fits the zero cycle")
	}
}

func TestBuildClusterFromField(t *testing.T) {
	f := topo.BuildField(13, 250, 4, 60)
	cfg := topo.DefaultConfig(0, 0)
	total := 0
	for k := range f.Heads {
		c, err := f.BuildCluster(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total += c.Sensors()
		// Sensors out of reach are allowed but must be flagged by level.
		for v := 1; v <= c.Sensors(); v++ {
			if c.Level[v] == 0 {
				t.Fatalf("cluster %d sensor %d has head level", k, v)
			}
		}
	}
	if total != 60 {
		t.Fatalf("field clusters hold %d sensors, want 60", total)
	}
	if _, err := f.BuildCluster(9, cfg); err == nil {
		t.Fatal("out-of-range cluster index should error")
	}
}
