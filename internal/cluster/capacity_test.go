package cluster

import (
	"testing"

	"repro/internal/topo"
)

func TestMaxSustainableRateShrinksWithSize(t *testing.T) {
	rate := func(n int) float64 {
		c, err := topo.Build(topo.DefaultConfig(n, 103))
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.LossProb = 0
		r, err := MaxSustainableRate(c, p, 1, 16)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small := rate(10)
	big := rate(60)
	if small <= 0 || big <= 0 {
		t.Fatalf("rates: %v, %v", small, big)
	}
	// The paper's capacity observation: bigger clusters sustain less
	// per-sensor rate.
	if big >= small {
		t.Fatalf("60 sensors sustain %v B/s >= 10 sensors' %v B/s", big, small)
	}
}

func TestMaxSustainableRateIsFeasible(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(30, 107))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LossProb = 0
	rate, err := MaxSustainableRate(c, p, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The returned rate must itself fit...
	p.RateBps = rate
	r, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllFit {
		t.Fatalf("returned rate %v does not fit", rate)
	}
	// ...and a clearly higher rate must not.
	p.RateBps = rate * 1.5
	r2, err := NewRunner(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r2.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.AllFit {
		t.Fatalf("rate %v above the capacity still fits", p.RateBps)
	}
}

func TestMaxSustainableRateValidation(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(5, 109))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MaxSustainableRate(c, DefaultParams(), 0, 1); err == nil {
		t.Error("zero cycles should error")
	}
	if _, err := MaxSustainableRate(c, DefaultParams(), 1, 0); err == nil {
		t.Error("zero tolerance should error")
	}
}
