package cluster

import (
	"testing"

	"repro/internal/topo"
)

func TestSourceRoutingCostsAirtime(t *testing.T) {
	c, err := topo.Build(topo.DefaultConfig(25, 73))
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultParams()
	base.LossProb = 0
	base.RateBps = 40
	src := base
	src.SourceRouting = true

	plain, err := NewRunner(c, base)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := NewRunner(c, src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := plain.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := routed.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Identical schedules (same slots) but longer slots -> longer duty.
	if ss.MeanDataSlots != sp.MeanDataSlots {
		t.Fatalf("source routing changed slot counts: %v vs %v",
			ss.MeanDataSlots, sp.MeanDataSlots)
	}
	if ss.MeanDuty <= sp.MeanDuty {
		t.Fatalf("source routing duty %v should exceed dependent-table duty %v",
			ss.MeanDuty, sp.MeanDuty)
	}
	// Both still deliver everything.
	if ss.DeliveredFraction() != 1 || sp.DeliveredFraction() != 1 {
		t.Fatal("both mechanisms must deliver all packets")
	}
	// The paper's point: the header "will add length to the data packets
	// and waste energy" — per-sensor energy goes up.
	var plainE, routedE float64
	for v := 1; v <= 25; v++ {
		plainE += sp.MeanProfiles[v].InTx.Seconds()
		routedE += ss.MeanProfiles[v].InTx.Seconds()
	}
	if routedE <= plainE {
		t.Fatalf("source routing tx time %v should exceed %v", routedE, plainE)
	}
}
