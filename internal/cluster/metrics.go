package cluster

import (
	"repro/internal/energy"
	"repro/internal/obs"
)

// Metric families the runner emits when Runner.Obs is set. Phase and
// energy families carry labels; the concrete series are built with
// obs.Series.
const (
	// MetricCycles counts completed duty cycles.
	MetricCycles = "cluster_cycles_total"
	// MetricPhaseSeconds is a histogram of per-cycle phase durations,
	// labeled phase="wake"|"ack"|"poll"|"sleep" (the Section II duty
	// cycle: wake-up broadcast, ack collection, data polling, sleep
	// broadcast).
	MetricPhaseSeconds = "cluster_phase_seconds"
	// MetricSlotsPerCycle is a histogram of slots used per cycle, labeled
	// kind="ack"|"data".
	MetricSlotsPerCycle = "cluster_slots_per_cycle"
	// MetricSlotsTotal counts slots used, labeled kind="ack"|"data".
	MetricSlotsTotal = "cluster_slots_total"
	// MetricRepolls counts loss-induced re-polls.
	MetricRepolls = "cluster_repolls_total"
	// MetricLosses counts lost transmissions. Under the greedy scheduler
	// every detected loss triggers exactly one re-poll, so this equals
	// MetricRepolls; it is kept distinct so the invariant is visible.
	MetricLosses = "cluster_losses_total"
	// MetricPacketsOffered / MetricPacketsDelivered count data packets.
	MetricPacketsOffered   = "cluster_packets_offered_total"
	MetricPacketsDelivered = "cluster_packets_delivered_total"
	// MetricActiveFraction is a gauge of the latest cycle's mean
	// per-sensor awake fraction — the live Fig. 7(a) metric.
	MetricActiveFraction = "cluster_active_fraction"
	// MetricEnergyJoules counts energy drawn across all sensors, labeled
	// state="tx"|"rx"|"idle"|"sleep".
	MetricEnergyJoules = "cluster_energy_joules_total"
)

var (
	seriesPhaseWake  = obs.Series(MetricPhaseSeconds, "phase", "wake")
	seriesPhaseAck   = obs.Series(MetricPhaseSeconds, "phase", "ack")
	seriesPhasePoll  = obs.Series(MetricPhaseSeconds, "phase", "poll")
	seriesPhaseSleep = obs.Series(MetricPhaseSeconds, "phase", "sleep")

	seriesSlotsAck       = obs.Series(MetricSlotsPerCycle, "kind", "ack")
	seriesSlotsData      = obs.Series(MetricSlotsPerCycle, "kind", "data")
	seriesSlotsAckTotal  = obs.Series(MetricSlotsTotal, "kind", "ack")
	seriesSlotsDataTotal = obs.Series(MetricSlotsTotal, "kind", "data")

	seriesEnergyTx    = obs.Series(MetricEnergyJoules, "state", "tx")
	seriesEnergyRx    = obs.Series(MetricEnergyJoules, "state", "rx")
	seriesEnergyIdle  = obs.Series(MetricEnergyJoules, "state", "idle")
	seriesEnergySleep = obs.Series(MetricEnergyJoules, "state", "sleep")
)

// slotBuckets sizes the slots-per-cycle histograms (slot counts, not
// seconds).
var slotBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// RegisterMetrics pre-registers the runner's series in reg with help text
// and slot-count buckets. Emission works without it — series auto-create
// with default buckets on first use — but registering makes the exposition
// self-describing and gives the slot histograms sensible bounds.
func RegisterMetrics(reg *obs.Registry) {
	reg.Counter(MetricCycles, "completed duty cycles")
	for _, s := range []string{seriesPhaseWake, seriesPhaseAck, seriesPhasePoll, seriesPhaseSleep} {
		reg.Histogram(s, "per-cycle duty phase durations in seconds", nil)
	}
	for _, s := range []string{seriesSlotsAck, seriesSlotsData} {
		reg.Histogram(s, "slots used per cycle", slotBuckets)
	}
	for _, s := range []string{seriesSlotsAckTotal, seriesSlotsDataTotal} {
		reg.Counter(s, "slots used")
	}
	reg.Counter(MetricRepolls, "loss-induced re-polls")
	reg.Counter(MetricLosses, "lost transmissions")
	reg.Counter(MetricPacketsOffered, "data packets offered")
	reg.Counter(MetricPacketsDelivered, "data packets delivered to the head")
	reg.Gauge(MetricActiveFraction, "latest cycle's mean per-sensor awake fraction")
	for _, s := range []string{seriesEnergyTx, seriesEnergyRx, seriesEnergyIdle, seriesEnergySleep} {
		reg.Counter(s, "energy drawn across all sensors in joules")
	}
}

// emit publishes one cycle's result to the runner's observer. Called only
// when Obs is non-nil, once per cycle — off the slot-level hot path.
func (r *Runner) emit(res *CycleResult) {
	o := r.Obs
	o.Add(MetricCycles, 1)
	o.Observe(seriesPhaseWake, res.PhaseWake.Seconds())
	o.Observe(seriesPhaseAck, res.PhaseAck.Seconds())
	o.Observe(seriesPhasePoll, res.PhaseData.Seconds())
	o.Observe(seriesPhaseSleep, res.PhaseSleep.Seconds())
	o.Observe(seriesSlotsAck, float64(res.AckSlots))
	o.Observe(seriesSlotsData, float64(res.DataSlots))
	o.Add(seriesSlotsAckTotal, float64(res.AckSlots))
	o.Add(seriesSlotsDataTotal, float64(res.DataSlots))
	o.Add(MetricRepolls, float64(res.Retries))
	o.Add(MetricLosses, float64(res.Retries))
	o.Add(MetricPacketsOffered, float64(res.Offered))
	o.Add(MetricPacketsDelivered, float64(res.Delivered))
	o.Set(MetricActiveFraction, res.ActiveFraction)

	m := r.P.Energy
	var tx, rx, idle, sleep float64
	for v := 1; v < len(res.Profiles); v++ {
		p := res.Profiles[v]
		tx += m.Energy(energy.Tx, p.InTx)
		rx += m.Energy(energy.Rx, p.InRx)
		idle += m.Energy(energy.Idle, p.InIdle)
		sleep += m.Energy(energy.Sleep, p.SleepTime())
	}
	o.Add(seriesEnergyTx, tx)
	o.Add(seriesEnergyRx, rx)
	o.Add(seriesEnergyIdle, idle)
	o.Add(seriesEnergySleep, sleep)
}
