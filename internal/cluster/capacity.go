package cluster

import (
	"fmt"

	"repro/internal/topo"
)

// Capacity analysis. The paper's Fig. 7(a) discussion observes that "there
// is a maximum size for a cluster under a certain data generating rate,
// and above this threshold, packets will be lost. Thus we should choose a
// suitable size for a cluster so that no packets are lost while sensors
// can also enjoy long sleeping time." This file quantifies that limit.

// MaxSustainableRate returns the largest per-sensor data rate (in
// bytes/second) the cluster sustains — every simulated duty cycle fits in
// the cycle period — found by bisection to within tol bytes/second.
//
// The probe simulates `cycles` duty cycles per candidate rate, so the
// answer accounts for ack collection, retransmissions and scheduling
// inefficiency, not just raw airtime.
func MaxSustainableRate(c *topo.Cluster, p Params, cycles int, tol float64) (float64, error) {
	if cycles < 1 {
		return 0, fmt.Errorf("cluster: need at least one cycle")
	}
	if tol <= 0 {
		return 0, fmt.Errorf("cluster: non-positive tolerance")
	}
	feasible := func(rate float64) (bool, error) {
		q := p
		q.RateBps = rate
		r, err := NewRunner(c, q)
		if err != nil {
			return false, err
		}
		s, err := r.Run(cycles)
		if err != nil {
			return false, err
		}
		return s.AllFit, nil
	}
	lo := 0.0
	hi := 8.0
	// Grow until infeasible (or give up at an absurd rate).
	const ceiling = 1 << 16
	for {
		ok, err := feasible(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > ceiling {
			return lo, nil // the cluster sustains anything sane
		}
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
