package core

import "sort"

// Scan-order heuristics for the greedy scheduler. The paper's algorithm
// scans requests "according to an arbitrarily predetermined order"; the
// order is a free design knob, and these helpers expose the natural
// candidates for the ablation (longest-route-first tends to fill the
// pipeline early; shortest-first drains the head's neighborhood early).

// OrderNatural returns the identity order.
func OrderNatural(reqs []Request) []int {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	return order
}

// OrderLongestFirst scans requests with more hops first, ties by index.
func OrderLongestFirst(reqs []Request) []int {
	order := OrderNatural(reqs)
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Hops() > reqs[order[b]].Hops()
	})
	return order
}

// OrderShortestFirst scans requests with fewer hops first, ties by index.
func OrderShortestFirst(reqs []Request) []int {
	order := OrderNatural(reqs)
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Hops() < reqs[order[b]].Hops()
	})
	return order
}
