package core

import (
	"math/rand"
	"testing"

	"repro/internal/radio"
)

// fig2Instance is the paper's Fig. 2: sensors S1(1), S2(2), S3(3), head 0.
// S2 and S3 hold one packet each; S2 relays through S1; S2->S1 and S3->head
// do not collide.
func fig2Instance() ([]Request, *radio.TableOracle) {
	reqs := []Request{
		{ID: 1, Route: []int{2, 1, 0}},
		{ID: 2, Route: []int{3, 0}},
	}
	o := radio.NewTableOracle()
	o.AllowPair(
		radio.Transmission{From: 2, To: 1},
		radio.Transmission{From: 3, To: 0},
	)
	return reqs, o
}

func TestFig2Example(t *testing.T) {
	reqs, o := fig2Instance()
	sched, st, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 2 {
		t.Fatalf("makespan = %d want 2 (paper Fig. 2(b))", sched.Makespan())
	}
	if err := Validate(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	// Slot 0 must carry both S2->S1 and S3->head.
	if len(sched.Slots[0]) != 2 {
		t.Fatalf("slot 0 = %v", sched.Slots[0])
	}
	if st.Retries != 0 || st.Slots != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Sequential polling would need 3 slots; verify with M=1.
	seq, _, err := Greedy(reqs, Options{Oracle: o, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Makespan() != 3 {
		t.Fatalf("sequential makespan = %d want 3", seq.Makespan())
	}
}

func TestGreedySingleHopReducesToSequential(t *testing.T) {
	// All sensors at level 1 with an oracle that permits nothing in
	// parallel: n packets take n slots (single-hop polling is trivial).
	o := radio.NewTableOracle()
	var reqs []Request
	for i := 1; i <= 5; i++ {
		reqs = append(reqs, Request{ID: i, Route: []int{i, 0}})
	}
	sched, st, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 5 {
		t.Fatalf("makespan = %d want 5", sched.Makespan())
	}
	if err := Validate(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range st.TxCount {
		total += c
	}
	if total != 5 {
		t.Fatalf("tx total = %d", total)
	}
}

func TestGreedyRespectsM(t *testing.T) {
	// Fully-compatible single-hop transmissions to distinct receivers
	// (not the head, to dodge the duplicate-receiver rule).
	o := radio.NewTableOracle()
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{ID: i + 1, Route: []int{10 + i, 20 + i}})
	}
	for i := range reqs {
		for j := i + 1; j < len(reqs); j++ {
			o.AllowPair(reqs[i].Tx(0), reqs[j].Tx(0))
		}
	}
	for _, m := range []int{1, 2, 3} {
		sched, _, err := Greedy(reqs, Options{Oracle: o, MaxConcurrent: m})
		if err != nil {
			t.Fatal(err)
		}
		for s, g := range sched.Slots {
			if len(g) > m {
				t.Fatalf("M=%d: slot %d has %d transmissions", m, s, len(g))
			}
		}
		want := (len(reqs) + m - 1) / m
		if sched.Makespan() != want {
			t.Fatalf("M=%d: makespan %d want %d", m, sched.Makespan(), want)
		}
	}
}

func TestGreedyUsesTestedOracleBound(t *testing.T) {
	// MaxConcurrent=0 should inherit M from a TestedOracle.
	o := radio.NewTableOracle()
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{ID: i + 1, Route: []int{10 + i, 20 + i}})
	}
	for i := range reqs {
		for j := i + 1; j < len(reqs); j++ {
			o.AllowPair(reqs[i].Tx(0), reqs[j].Tx(0))
		}
	}
	tested := radio.NewTestedOracle(o, 2)
	sched, _, err := Greedy(reqs, Options{Oracle: tested})
	if err != nil {
		t.Fatal(err)
	}
	for s, g := range sched.Slots {
		if len(g) > 2 {
			t.Fatalf("slot %d exceeded tested-oracle bound: %v", s, g)
		}
	}
	if sched.Makespan() != 2 {
		t.Fatalf("makespan = %d want 2", sched.Makespan())
	}
}

func TestGreedyLossRetries(t *testing.T) {
	reqs, o := fig2Instance()
	// Lose S3's first transmission attempt (slot 0) only.
	loss := func(slot int, tx radio.Transmission) bool {
		return slot == 0 && tx.From == 3
	}
	sched, st, err := Greedy(reqs, Options{Oracle: o, Loss: loss})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d want 1", st.Retries)
	}
	if err := Validate(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	// S3's packet must complete on the retry.
	if sched.Completed[2] < 1 {
		t.Fatalf("retried packet completed at %d", sched.Completed[2])
	}
}

func TestGreedyMidRouteLossRepollsFromSource(t *testing.T) {
	// 3-hop route; lose the second hop of the first attempt. The head
	// detects the missing arrival and re-polls the source sensor.
	reqs := []Request{{ID: 7, Route: []int{3, 2, 1, 0}}}
	o := radio.NewTableOracle()
	first := true
	loss := func(slot int, tx radio.Transmission) bool {
		if tx.From == 2 && first {
			first = false
			return true
		}
		return false
	}
	sched, st, err := Greedy(reqs, Options{Oracle: o, Loss: loss})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d", st.Retries)
	}
	if err := Validate(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	// The failed attempt transmitted hops 0 and 1 but not hop 2.
	if st.TxCount[3] != 2 { // source sent twice
		t.Fatalf("source tx count = %d want 2", st.TxCount[3])
	}
	if st.TxCount[1] != 1 { // last relay only transmitted on the retry
		t.Fatalf("relay 1 tx count = %d want 1", st.TxCount[1])
	}
}

func TestGreedyPermanentLossErrors(t *testing.T) {
	reqs, o := fig2Instance()
	loss := func(int, radio.Transmission) bool { return true }
	_, _, err := Greedy(reqs, Options{Oracle: o, Loss: loss, MaxSlots: 100})
	if err == nil {
		t.Fatal("expected overflow error under 100% loss")
	}
}

func TestGreedyInputValidation(t *testing.T) {
	o := radio.NewTableOracle()
	if _, _, err := Greedy(nil, Options{}); err == nil {
		t.Error("missing oracle should error")
	}
	bad := []Request{{ID: 1, Route: []int{5}}}
	if _, _, err := Greedy(bad, Options{Oracle: o}); err == nil {
		t.Error("short route should error")
	}
	loop := []Request{{ID: 1, Route: []int{1, 2, 1, 0}}}
	if _, _, err := Greedy(loop, Options{Oracle: o}); err == nil {
		t.Error("looping route should error")
	}
	reqs := []Request{{ID: 1, Route: []int{1, 0}}, {ID: 2, Route: []int{2, 0}}}
	if _, _, err := Greedy(reqs, Options{Oracle: o, Order: []int{0}}); err == nil {
		t.Error("short order should error")
	}
	if _, _, err := Greedy(reqs, Options{Oracle: o, Order: []int{0, 0}}); err == nil {
		t.Error("non-permutation order should error")
	}
}

func TestGreedyOrderMatters(t *testing.T) {
	// Two requests sharing nothing plus one conflicting with both; any
	// order must yield a valid schedule.
	reqs, o := fig2Instance()
	a, _, err := Greedy(reqs, Options{Oracle: o, Order: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(a, reqs, o); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEmptyRequests(t *testing.T) {
	o := radio.NewTableOracle()
	sched, st, err := Greedy(nil, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 0 || st.Slots != 0 {
		t.Fatalf("empty run: makespan %d", sched.Makespan())
	}
}

func TestGreedyDelayVariant(t *testing.T) {
	reqs, o := fig2Instance()
	sched, _, err := Greedy(reqs, Options{Oracle: o, AllowDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateDelayed(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	// Theorem 2: delay cannot beat the pipelined optimum (2 slots here).
	if sched.Makespan() < 2 {
		t.Fatalf("delay variant makespan %d beats lower bound", sched.Makespan())
	}
}

func TestGreedyDelayWithLoss(t *testing.T) {
	reqs := []Request{{ID: 1, Route: []int{2, 1, 0}}}
	o := radio.NewTableOracle()
	lost := false
	loss := func(slot int, tx radio.Transmission) bool {
		if tx.From == 1 && !lost {
			lost = true
			return true
		}
		return false
	}
	sched, st, err := Greedy(reqs, Options{Oracle: o, AllowDelay: true, Loss: loss})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d", st.Retries)
	}
	if err := ValidateDelayed(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	// In delay mode the retry resumes from the holding relay, not the
	// source: the source transmits exactly once.
	if st.TxCount[2] != 1 {
		t.Fatalf("source tx count = %d want 1", st.TxCount[2])
	}
	if st.TxCount[1] != 2 {
		t.Fatalf("relay tx count = %d want 2", st.TxCount[1])
	}
}

func TestRandomLoss(t *testing.T) {
	f := RandomLoss(5, 0.5)
	tx := radio.Transmission{From: 1, To: 2}
	a, b := f(3, tx), f(3, tx)
	if a != b {
		t.Fatal("RandomLoss must be deterministic per (slot, tx)")
	}
	never := RandomLoss(5, 0)
	for s := 0; s < 100; s++ {
		if never(s, tx) {
			t.Fatal("p=0 must never lose")
		}
	}
	always := RandomLoss(5, 1)
	for s := 0; s < 100; s++ {
		if !always(s, tx) {
			t.Fatal("p=1 must always lose")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p>1")
		}
	}()
	RandomLoss(1, 1.5)
}

func TestGreedyStatsAccounting(t *testing.T) {
	reqs, o := fig2Instance()
	_, st, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	// Lossless: total tx = total hops = 3.
	total := 0
	for _, c := range st.TxCount {
		total += c
	}
	if total != 3 {
		t.Fatalf("tx total = %d want 3", total)
	}
	// Head receives twice.
	if st.RxCount[0] != 2 {
		t.Fatalf("head rx = %d want 2", st.RxCount[0])
	}
	// S3 finishes in slot 0 and is inactive afterwards.
	if st.LastActive[3] != 0 {
		t.Fatalf("S3 last active = %d want 0", st.LastActive[3])
	}
	if st.LastActive[1] != 1 {
		t.Fatalf("S1 last active = %d want 1", st.LastActive[1])
	}
}

// randomTSRFLikeInstance builds random multi-hop requests over a small id
// space with a random pairwise compatibility table.
func randomInstance(rng *rand.Rand) ([]Request, *radio.TableOracle) {
	nReq := 1 + rng.Intn(5)
	var reqs []Request
	for i := 0; i < nReq; i++ {
		hops := 1 + rng.Intn(3)
		route := []int{0}
		// Build backwards from the head using fresh node ids to keep
		// routes loop-free.
		for k := 0; k < hops; k++ {
			route = append([]int{10 + i*4 + k}, route...)
		}
		reqs = append(reqs, Request{ID: i + 1, Route: route})
	}
	o := radio.NewTableOracle()
	var all []radio.Transmission
	for _, r := range reqs {
		for k := 0; k < r.Hops(); k++ {
			all = append(all, r.Tx(k))
		}
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if rng.Float64() < 0.5 {
				o.AllowPair(all[i], all[j])
			}
		}
	}
	return reqs, o
}

func TestGreedyAlwaysValidRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		reqs, o := randomInstance(rng)
		sched, st, err := Greedy(reqs, Options{Oracle: o})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(sched, reqs, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Lower bounds: every packet arrives at the head in a distinct
		// slot, and the longest route is a floor.
		maxHops := 0
		for _, r := range reqs {
			if r.Hops() > maxHops {
				maxHops = r.Hops()
			}
		}
		if sched.Makespan() < maxHops || sched.Makespan() < len(reqs) {
			t.Fatalf("trial %d: makespan %d below lower bounds (%d hops, %d reqs)",
				trial, sched.Makespan(), maxHops, len(reqs))
		}
		if st.Slots != sched.Makespan() {
			t.Fatalf("trial %d: stats/schedule disagree on slots", trial)
		}
	}
}
