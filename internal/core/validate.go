package core

import (
	"fmt"

	"repro/internal/radio"
)

// Validate checks that a schedule is physically sound against the ground
// truth and logically complete for the given requests:
//
//  1. every slot's transmission group is compatible under truth (the
//     schedule is collision-free on the real channel);
//  2. every request's hops appear in consecutive slots starting at
//     Start[ID] (the pipelining discipline; lost-and-retried requests are
//     validated against their final admission);
//  3. every request is completed exactly at Start + Hops - 1.
//
// A nil error means the schedule can be executed verbatim by the cluster.
func Validate(sched *Schedule, reqs []Request, truth radio.CompatibilityOracle) error {
	for s, group := range sched.Slots {
		if len(group) == 0 {
			continue
		}
		if !truth.Compatible(group) {
			return fmt.Errorf("core: slot %d group %v collides under ground truth", s, group)
		}
	}
	for _, r := range reqs {
		start, ok := sched.Start[r.ID]
		if !ok {
			return fmt.Errorf("core: request %d was never admitted", r.ID)
		}
		for k := 0; k < r.Hops(); k++ {
			s := start + k
			if s >= len(sched.Slots) {
				return fmt.Errorf("core: request %d hop %d falls beyond the schedule", r.ID, k)
			}
			if !containsTx(sched.Slots[s], r.Tx(k)) {
				return fmt.Errorf("core: request %d hop %d (%v) missing from slot %d", r.ID, k, r.Tx(k), s)
			}
		}
		done, ok := sched.Completed[r.ID]
		if !ok {
			return fmt.Errorf("core: request %d never completed", r.ID)
		}
		if want := start + r.Hops() - 1; done != want {
			return fmt.Errorf("core: request %d completed at slot %d, want %d", r.ID, done, want)
		}
	}
	return nil
}

// ValidateDelayed checks a delay-allowed schedule: hops of every request
// appear in increasing (not necessarily consecutive) slot order, all slot
// groups are compatible, and every request completes. Retried hops may
// appear multiple times; the check requires an increasing chain.
func ValidateDelayed(sched *Schedule, reqs []Request, truth radio.CompatibilityOracle) error {
	for s, group := range sched.Slots {
		if len(group) == 0 {
			continue
		}
		if !truth.Compatible(group) {
			return fmt.Errorf("core: slot %d group %v collides under ground truth", s, group)
		}
	}
	for _, r := range reqs {
		if _, ok := sched.Completed[r.ID]; !ok {
			return fmt.Errorf("core: request %d never completed", r.ID)
		}
		prev := -1
		for k := 0; k < r.Hops(); k++ {
			found := -1
			for s := prev + 1; s < len(sched.Slots); s++ {
				if containsTx(sched.Slots[s], r.Tx(k)) {
					found = s
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("core: request %d hop %d has no slot after %d", r.ID, k, prev)
			}
			prev = found
		}
	}
	return nil
}

func containsTx(group []radio.Transmission, tx radio.Transmission) bool {
	for _, g := range group {
		if g == tx {
			return true
		}
	}
	return false
}
