package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// The paper's Fig. 2: three sensors, one relaying through another. The
// head polls S2 and S3 together because their transmissions do not
// collide, finishing in 2 slots where sequential polling needs 3.
func ExampleGreedy() {
	reqs := []core.Request{
		{ID: 1, Route: []int{2, 1, 0}}, // S2 -> S1 -> head
		{ID: 2, Route: []int{3, 0}},    // S3 -> head
	}
	oracle := radio.NewTableOracle()
	oracle.AllowPair(
		radio.Transmission{From: 2, To: 1},
		radio.Transmission{From: 3, To: 0},
	)
	sched, _, err := core.Greedy(reqs, core.Options{Oracle: oracle})
	if err != nil {
		panic(err)
	}
	fmt.Println("slots:", sched.Makespan())
	for s, group := range sched.Slots {
		fmt.Printf("slot %d: %v\n", s+1, group)
	}
	// Output:
	// slots: 2
	// slot 1: [2->1 3->0]
	// slot 2: [1->0]
}

// Lemma 1's reduction: a graph has a Hamiltonian path exactly when its
// TSRF polling instance schedules in n+1 slots.
func ExampleTSRFFromGraph() {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	tsrf := core.TSRFFromGraph(g)
	path, ok, err := tsrf.SolveTSRFP()
	if err != nil {
		panic(err)
	}
	fmt.Println("meets n+1 slots:", ok)
	fmt.Println("Hamiltonian path:", path)
	// Output:
	// meets n+1 slots: true
	// Hamiltonian path: [0 1 2 3]
}

// Packet loss: the head notices a missing arrival and re-polls.
func ExampleGreedy_loss() {
	reqs := []core.Request{{ID: 1, Route: []int{1, 0}}}
	oracle := radio.NewTableOracle()
	first := true
	loss := func(slot int, tx radio.Transmission) bool {
		if first {
			first = false
			return true
		}
		return false
	}
	sched, st, err := core.Greedy(reqs, core.Options{Oracle: oracle, Loss: loss})
	if err != nil {
		panic(err)
	}
	fmt.Println("retries:", st.Retries)
	fmt.Println("slots:", sched.Makespan())
	// Output:
	// retries: 1
	// slots: 2
}
