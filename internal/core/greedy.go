package core

import (
	"fmt"

	"repro/internal/radio"
)

// Greedy runs the paper's on-line polling algorithm (Table 1).
//
// Each packet is a polling request; requests start active. Before every
// time slot the head scans the active requests in a fixed order and admits
// a request if its pipelined transmissions do not collide with the
// already-scheduled ones in any affected slot (and no slot exceeds M
// concurrent transmissions). Admitted requests become idle. Because the
// head knows each admitted packet's start slot and hop count, it knows
// exactly when to expect the packet; if the packet does not arrive —
// packet loss — the request becomes active again and is re-polled.
//
// Greedy returns the schedule as instructed by the head (lost hops keep
// their reserved slots) and the physical statistics of the run.
func Greedy(reqs []Request, opt Options) (*Schedule, *Stats, error) {
	if opt.Oracle == nil {
		return nil, nil, fmt.Errorf("core: Options.Oracle is required")
	}
	var orderBuf []int
	if opt.Scratch != nil {
		orderBuf = opt.Scratch.order
	}
	order, err := scanOrder(reqs, opt.Order, orderBuf)
	if err != nil {
		return nil, nil, err
	}
	if opt.Scratch != nil {
		opt.Scratch.order = order
	}
	totalHops := 0
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, nil, err
		}
		totalHops += r.Hops()
	}
	maxSlots := opt.MaxSlots
	if maxSlots == 0 {
		maxSlots = 64 * (totalHops + 1)
	}
	if opt.AllowDelay {
		return greedyDelay(reqs, order, opt, maxSlots, totalHops)
	}
	return greedyPipelined(reqs, order, opt, maxSlots, totalHops)
}

func scanOrder(reqs []Request, order []int, buf []int) ([]int, error) {
	if order == nil {
		if cap(buf) >= len(reqs) {
			buf = buf[:len(reqs)]
		} else {
			buf = make([]int, len(reqs))
		}
		for i := range buf {
			buf[i] = i
		}
		return buf, nil
	}
	if len(order) != len(reqs) {
		return nil, fmt.Errorf("core: order has %d entries for %d requests", len(order), len(reqs))
	}
	seen := make([]bool, len(reqs))
	for _, i := range order {
		if i < 0 || i >= len(reqs) || seen[i] {
			return nil, fmt.Errorf("core: order is not a permutation")
		}
		seen[i] = true
	}
	return append(buf[:0], order...), nil
}

// flight tracks one admitted (in-flight) request.
type flight struct {
	req       int // index into reqs
	start     int
	firstLoss int // hop index whose transmission is lost, or -1
}

func greedyPipelined(reqs []Request, order []int, opt Options, maxSlots, totalHops int) (*Schedule, *Stats, error) {
	m := opt.maxConcurrent()
	gs := opt.Scratch
	var sched *Schedule
	var st *Stats
	if gs != nil {
		sched, st = gs.reset(len(reqs))
	} else {
		sched = &Schedule{
			// A lossless schedule never needs more than one slot per hop;
			// the preallocation avoids growing the slot list one entry at
			// a time.
			Slots:     make([][]radio.Transmission, 0, totalHops),
			Start:     make(map[int]int, len(reqs)),
			Completed: make(map[int]int, len(reqs)),
		}
		st = newStats()
	}

	var active []bool
	if gs != nil {
		active = gs.bools(len(reqs))
	} else {
		active = make([]bool, len(reqs))
	}
	remaining := len(reqs)
	maxHops := 0
	for i, r := range reqs {
		active[i] = true
		if h := r.Hops(); h > maxHops {
			maxHops = h
		}
	}
	// Expected arrivals live at most maxHops-1 slots in the future, so a
	// fixed ring indexed by slot replaces a map[int][]flight; buckets are
	// reused across laps, making the steady state allocation-free.
	ringSize := maxHops + 1
	var arrivals [][]flight
	var scratch []radio.Transmission
	if gs != nil {
		arrivals = gs.ring(ringSize)
		scratch = gs.group[:0]
	} else {
		arrivals = make([][]flight, ringSize)
		scratch = make([]radio.Transmission, 0, 16)
	}

	for slot := 0; remaining > 0; slot++ {
		if slot >= maxSlots {
			if gs != nil {
				gs.group = scratch
			}
			return sched, st, fmt.Errorf("core: polling exceeded %d slots with %d packets outstanding", maxSlots, remaining)
		}
		// Admission scan (the inner while-loop of Table 1): add active
		// requests whose pipelined hops fit.
		for _, idx := range order {
			if !active[idx] {
				continue
			}
			r := reqs[idx]
			if !fits(sched, r, slot, m, opt.Oracle, &scratch) {
				continue
			}
			// Commit every hop to its slot. Growing within capacity keeps
			// the previous run's slot buckets (truncated) instead of
			// overwriting their headers with nil — the scratch reuse.
			for k := 0; k < r.Hops(); k++ {
				s := slot + k
				for len(sched.Slots) <= s {
					if n := len(sched.Slots); n < cap(sched.Slots) {
						sched.Slots = sched.Slots[:n+1]
						sched.Slots[n] = sched.Slots[n][:0]
					} else {
						sched.Slots = append(sched.Slots, nil)
					}
				}
				sched.Slots[s] = append(sched.Slots[s], r.Tx(k))
			}
			f := flight{req: idx, start: slot, firstLoss: -1}
			if opt.Loss != nil {
				for k := 0; k < r.Hops(); k++ {
					if opt.Loss(slot+k, r.Tx(k)) {
						f.firstLoss = k
						break
					}
				}
			}
			done := slot + r.Hops() - 1
			arrivals[done%ringSize] = append(arrivals[done%ringSize], f)
			active[idx] = false
			sched.Start[r.ID] = slot
			// Physical accounting: hops up to and including the lost one
			// actually transmit; later hops have nothing to forward.
			lastHop := r.Hops() - 1
			if f.firstLoss >= 0 {
				lastHop = f.firstLoss
			}
			for k := 0; k <= lastHop; k++ {
				tx := r.Tx(k)
				st.markTx(tx.From, slot+k)
				st.markRx(tx.To, slot+k)
			}
		}
		// End of slot: the head checks expected arrivals.
		bucket := arrivals[slot%ringSize]
		for _, f := range bucket {
			if f.firstLoss >= 0 {
				st.Retries++
				active[f.req] = true
			} else {
				sched.Completed[reqs[f.req].ID] = slot
				remaining--
			}
		}
		arrivals[slot%ringSize] = bucket[:0]
	}
	st.Slots = len(sched.Slots)
	if gs != nil {
		gs.group = scratch
	}
	return sched, st, nil
}

// fits reports whether request r, started at slot, keeps every affected
// slot's transmission group compatible and within the concurrency cap m
// (m == 0 means uncapped). The candidate groups are assembled in the
// caller-owned scratch buffer so the per-candidate check allocates
// nothing.
func fits(sched *Schedule, r Request, slot, m int, oracle radio.CompatibilityOracle, scratch *[]radio.Transmission) bool {
	group := (*scratch)[:0]
	for k := 0; k < r.Hops(); k++ {
		s := slot + k
		var existing []radio.Transmission
		if s < len(sched.Slots) {
			existing = sched.Slots[s]
		}
		if m > 0 && len(existing)+1 > m {
			*scratch = group
			return false
		}
		group = append(group[:0], existing...)
		group = append(group, r.Tx(k))
		if !oracle.Compatible(group) {
			*scratch = group
			return false
		}
	}
	*scratch = group
	return true
}

// greedyDelay is the delay-allowed variant: every hop is scheduled
// independently and a relay may hold a packet across slots. On loss the
// failed hop is retried from the node that still holds the packet.
func greedyDelay(reqs []Request, order []int, opt Options, maxSlots, totalHops int) (*Schedule, *Stats, error) {
	m := opt.maxConcurrent()
	sched := &Schedule{
		Slots:     make([][]radio.Transmission, 0, totalHops),
		Start:     make(map[int]int, len(reqs)),
		Completed: make(map[int]int, len(reqs)),
	}
	st := newStats()

	pos := make([]int, len(reqs)) // current holder index within the route
	remaining := len(reqs)
	group := make([]radio.Transmission, 0, 16)
	movers := make([]int, 0, len(reqs))

	for slot := 0; remaining > 0; slot++ {
		if slot >= maxSlots {
			return sched, st, fmt.Errorf("core: polling exceeded %d slots with %d packets outstanding", maxSlots, remaining)
		}
		group = group[:0]
		movers = movers[:0]
		for _, idx := range order {
			r := reqs[idx]
			if pos[idx] >= r.Hops() {
				continue
			}
			tx := r.Tx(pos[idx])
			if m > 0 && len(group)+1 > m {
				continue
			}
			// Test the candidate in place and roll back on rejection,
			// instead of copying the whole group per candidate.
			group = append(group, tx)
			if !opt.Oracle.Compatible(group) {
				group = group[:len(group)-1]
				continue
			}
			movers = append(movers, idx)
			if pos[idx] == 0 {
				if _, started := sched.Start[r.ID]; !started {
					sched.Start[r.ID] = slot
				}
			}
		}
		sched.Slots = append(sched.Slots, append([]radio.Transmission(nil), group...))
		for gi, idx := range movers {
			r := reqs[idx]
			tx := group[gi]
			st.markTx(tx.From, slot)
			st.markRx(tx.To, slot)
			if opt.Loss != nil && opt.Loss(slot, tx) {
				st.Retries++
				continue // holder keeps the packet; hop retried later
			}
			pos[idx]++
			if pos[idx] == r.Hops() {
				sched.Completed[r.ID] = slot
				remaining--
			}
		}
	}
	st.Slots = len(sched.Slots)
	return sched, st, nil
}

// RandomLoss returns a LossFn that loses each transmission independently
// with probability p, deterministically derived from the given seed and
// the (slot, transmission) pair so that runs are reproducible.
func RandomLoss(seed int64, p float64) LossFn {
	if p < 0 || p > 1 {
		panic("core: loss probability outside [0,1]")
	}
	return ProbLoss(seed, func(radio.Transmission) float64 { return p })
}

// ProbLoss returns a LossFn with a per-transmission loss probability given
// by prob (e.g. derived from each link's SNR margin via radio.Quality),
// deterministic per (seed, slot, transmission). The draw is a stateless
// splitmix-style hash of (seed, slot, tx) — no RNG is constructed on the
// hot path.
func ProbLoss(seed int64, prob func(tx radio.Transmission) float64) LossFn {
	return func(slot int, tx radio.Transmission) bool {
		p := prob(tx)
		if p <= 0 {
			return false
		}
		if p >= 1 {
			return true
		}
		return lossUnit(seed, slot, tx) < p
	}
}

// lossUnit maps (seed, slot, tx) to a uniform draw in [0, 1).
func lossUnit(seed int64, slot int, tx radio.Transmission) float64 {
	h := mix64(uint64(seed) ^ 0x9E3779B97F4A7C15)
	h = mix64(h ^ uint64(slot)*0xBF58476D1CE4E5B9)
	h = mix64(h ^ uint64(uint32(tx.From))*0x94D049BB133111EB)
	h = mix64(h ^ uint64(uint32(tx.To))*0x9E3779B97F4A7C15)
	return float64(h>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
