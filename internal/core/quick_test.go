package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/radio"
)

// Property-based tests: for arbitrary instances, seeds and loss rates the
// scheduler must uphold its invariants — complete delivery, collision
// freedom under the same oracle, pipelining discipline, concurrency caps
// and lower bounds.

// instanceFrom maps arbitrary fuzz bytes to a polling instance.
func instanceFrom(seed int64) ([]Request, *radio.TableOracle) {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng)
}

func TestQuickGreedyInvariantsLossless(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		reqs, o := instanceFrom(seed)
		m := int(mRaw%4) + 1
		sched, st, err := Greedy(reqs, Options{Oracle: o, MaxConcurrent: m})
		if err != nil {
			return false
		}
		if Validate(sched, reqs, o) != nil {
			return false
		}
		// Concurrency cap.
		for _, g := range sched.Slots {
			if len(g) > m {
				return false
			}
		}
		// Lower bounds: distinct head arrivals and the longest route.
		maxHops := 0
		totalHops := 0
		for _, r := range reqs {
			totalHops += r.Hops()
			if r.Hops() > maxHops {
				maxHops = r.Hops()
			}
		}
		if sched.Makespan() < len(reqs) || sched.Makespan() < maxHops {
			return false
		}
		// Upper bound: one transmission per slot is always feasible, and
		// admission scans every slot, so makespan can never exceed the
		// total hop count (lossless).
		if sched.Makespan() > totalHops {
			return false
		}
		return st.Retries == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickGreedyInvariantsLossy(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		reqs, o := instanceFrom(seed)
		p := float64(pRaw%40) / 100 // 0..0.39
		sched, st, err := Greedy(reqs, Options{
			Oracle: o,
			Loss:   RandomLoss(seed^0x5a5a, p),
		})
		if err != nil {
			// Extreme unlucky loss sequences can exceed the slot cap;
			// the error itself is the documented behavior.
			return true
		}
		if Validate(sched, reqs, o) != nil {
			return false
		}
		if p == 0 && st.Retries != 0 {
			return false
		}
		// Every request completed exactly once, at start + hops - 1.
		for _, r := range reqs {
			done, ok := sched.Completed[r.ID]
			if !ok || done != sched.Start[r.ID]+r.Hops()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDelayModeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		reqs, o := instanceFrom(seed)
		sched, _, err := Greedy(reqs, Options{Oracle: o, AllowDelay: true})
		if err != nil {
			return false
		}
		return ValidateDelayed(sched, reqs, o) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickStatsConservation(t *testing.T) {
	// Lossless: total transmissions equal total hops; every node's rx
	// count equals the transmissions addressed to it.
	f := func(seed int64) bool {
		reqs, o := instanceFrom(seed)
		sched, st, err := Greedy(reqs, Options{Oracle: o})
		if err != nil {
			return false
		}
		totalHops := 0
		for _, r := range reqs {
			totalHops += r.Hops()
		}
		gotTx, gotRx := 0, 0
		for _, c := range st.TxCount {
			gotTx += c
		}
		for _, c := range st.RxCount {
			gotRx += c
		}
		return gotTx == totalHops && gotRx == totalHops &&
			sched.Transmissions() == totalHops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimalNeverBeatsBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Smaller instances: the exact solver is exponential.
		nReq := 1 + rng.Intn(4)
		var reqs []Request
		for i := 0; i < nReq; i++ {
			hops := 1 + rng.Intn(2)
			route := []int{0}
			for k := 0; k < hops; k++ {
				route = append([]int{10 + i*4 + k}, route...)
			}
			reqs = append(reqs, Request{ID: i + 1, Route: route})
		}
		o := radio.NewTableOracle()
		var all []radio.Transmission
		for _, r := range reqs {
			for k := 0; k < r.Hops(); k++ {
				all = append(all, r.Tx(k))
			}
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if rng.Float64() < 0.5 {
					o.AllowPair(all[i], all[j])
				}
			}
		}
		opt, err := Optimal(reqs, Options{Oracle: o})
		if err != nil {
			return false
		}
		maxHops := 0
		for _, r := range reqs {
			if r.Hops() > maxHops {
				maxHops = r.Hops()
			}
		}
		return opt.Makespan() >= len(reqs) && opt.Makespan() >= maxHops &&
			Validate(opt, reqs, o) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
