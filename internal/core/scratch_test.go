package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/radio"
)

// randomPollingRun builds a random multi-hop polling instance: sensors
// 1..n relay toward head 0 along random tree paths, with every pair of
// transmissions allowed at random — enough structure to exercise
// pipelining, collisions and the arrival ring.
func randomPollingRun(rng *rand.Rand, n int) ([]Request, *radio.TableOracle) {
	parent := make([]int, n+1)
	for v := 1; v <= n; v++ {
		parent[v] = rng.Intn(v) // 0..v-1, closer to the head
	}
	var reqs []Request
	id := 0
	for v := 1; v <= n; v++ {
		for k := rng.Intn(3); k > 0; k-- {
			route := []int{v}
			for x := v; x != 0; {
				x = parent[x]
				route = append(route, x)
			}
			id++
			reqs = append(reqs, Request{ID: id, Route: route})
		}
	}
	o := radio.NewTableOracle()
	for a := 0; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			if rng.Intn(2) == 0 {
				o.AllowPair(
					radio.Transmission{From: a, To: parent[a]},
					radio.Transmission{From: b, To: parent[b]},
				)
			}
		}
	}
	return reqs, o
}

// TestGreedyScratchEquivalence: a scratch-backed Greedy run must produce
// schedules and stats identical to a fresh run — across repeated reuse of
// one scratch with shrinking and growing request sets, with and without
// loss. The scratch may only move where buffers live.
func TestGreedyScratchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var gs GreedyScratch
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		reqs, o := randomPollingRun(rng, n)
		if len(reqs) == 0 {
			continue
		}
		var loss LossFn
		if trial%2 == 1 {
			loss = RandomLoss(int64(trial), 0.1)
		}
		fresh, freshStats, err := Greedy(reqs, Options{Oracle: o, Loss: loss})
		if err != nil {
			t.Fatal(err)
		}
		reused, reusedStats, err := Greedy(reqs, Options{Oracle: o, Loss: loss, Scratch: &gs})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Makespan() != reused.Makespan() {
			t.Fatalf("trial %d: makespan %d fresh vs %d scratch", trial, fresh.Makespan(), reused.Makespan())
		}
		for s := range fresh.Slots {
			a, b := fresh.Slots[s], reused.Slots[s]
			if len(a) != len(b) {
				t.Fatalf("trial %d slot %d: %v vs %v", trial, s, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d slot %d: %v vs %v", trial, s, a, b)
				}
			}
		}
		if !reflect.DeepEqual(fresh.Start, reused.Start) || !reflect.DeepEqual(fresh.Completed, reused.Completed) {
			t.Fatalf("trial %d: start/completed maps diverge", trial)
		}
		if !reflect.DeepEqual(freshStats, reusedStats) {
			t.Fatalf("trial %d: stats diverge:\n%+v\nvs\n%+v", trial, freshStats, reusedStats)
		}
	}
}
