package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
)

// This file reproduces the paper's NP-hardness constructions.
//
// Lemma 1 reduces Hamiltonian Path to the TSRF Polling problem (TSRFP). A
// TSRF ("two-level star with relaying only in the first level") has n
// branches s'_i -> s_i -> head; each second-level sensor s'_i holds
// exactly one packet and first-level sensors hold none. The interference
// pattern mirrors an arbitrary graph G: s'_i -> s_i is compatible with
// s_j -> head iff {v_i, v_j} is an edge of G. A schedule finishing in
// n+1 slots forces the second-level sensors to start back-to-back, and
// consecutive starts are exactly edges of G — a Hamiltonian path.

// TSRF is a reduction instance: the polling requests, the interference
// oracle and the branch count.
type TSRF struct {
	N      int
	Reqs   []Request
	Oracle *radio.TableOracle
}

// Node-id layout of a TSRF with n branches: head = 0, first-level sensor
// of branch i (1-based) = i, second-level sensor = n + i.
func (t *TSRF) head() int        { return 0 }
func (t *TSRF) first(i int) int  { return i }
func (t *TSRF) second(i int) int { return t.N + i }
func (t *TSRF) relayTx(i int) radio.Transmission {
	return radio.Transmission{From: t.first(i), To: t.head()}
}
func (t *TSRF) startTx(i int) radio.Transmission {
	return radio.Transmission{From: t.second(i), To: t.first(i)}
}

// TSRFFromGraph builds the TSRFP instance of Lemma 1 for the undirected
// graph g: one branch per vertex, and for every edge {u,v} of g the pairs
// (s'_u -> s_u, s_v -> head) and (s'_v -> s_v, s_u -> head) are marked
// compatible. All other pairs remain incompatible.
func TSRFFromGraph(g *graph.Undirected) *TSRF {
	n := g.N()
	t := &TSRF{N: n, Oracle: radio.NewTableOracle()}
	for i := 1; i <= n; i++ {
		t.Reqs = append(t.Reqs, Request{
			ID:    i,
			Route: []int{t.second(i), t.first(i), t.head()},
		})
	}
	for _, e := range g.Edges() {
		u, v := e[0]+1, e[1]+1 // vertices are 0-based, branches 1-based
		t.Oracle.AllowPair(t.startTx(u), t.relayTx(v))
		t.Oracle.AllowPair(t.startTx(v), t.relayTx(u))
	}
	return t
}

// OptimalMakespan is the makespan every TSRF schedule must meet for the
// reduction to answer "yes": the head receives n packets in distinct slots
// and the first can arrive no earlier than slot 2, so T = n + 1.
func (t *TSRF) OptimalMakespan() int { return t.N + 1 }

// HamPathToSchedule converts a Hamiltonian path of the source graph
// (0-based vertices) into an (n+1)-slot TSRF schedule: branch path[k]+1
// starts in slot k, its relay lands in slot k+1.
func (t *TSRF) HamPathToSchedule(path []int) (*Schedule, error) {
	if len(path) != t.N {
		return nil, fmt.Errorf("core: path visits %d of %d vertices", len(path), t.N)
	}
	starts := make([]int, t.N)
	for k, v := range path {
		if v < 0 || v >= t.N {
			return nil, fmt.Errorf("core: vertex %d out of range", v)
		}
		starts[v] = k // request index v (branch v+1) starts at slot k
	}
	return scheduleFromStarts(t.Reqs, starts), nil
}

// ScheduleToHamPath converts an (n+1)-slot pipelined TSRF schedule back
// into a Hamiltonian path of the source graph, or reports why it cannot.
func (t *TSRF) ScheduleToHamPath(sched *Schedule) ([]int, error) {
	if sched.Makespan() != t.OptimalMakespan() {
		return nil, fmt.Errorf("core: schedule uses %d slots, want %d", sched.Makespan(), t.OptimalMakespan())
	}
	path := make([]int, t.N)
	seen := make([]bool, t.N)
	for i := 1; i <= t.N; i++ {
		start, ok := sched.Start[i]
		if !ok {
			return nil, fmt.Errorf("core: branch %d missing from schedule", i)
		}
		if start < 0 || start >= t.N {
			return nil, fmt.Errorf("core: branch %d starts at slot %d outside [0,%d)", i, start, t.N)
		}
		if seen[start] {
			return nil, fmt.Errorf("core: two branches start at slot %d", start)
		}
		seen[start] = true
		path[start] = i - 1
	}
	return path, nil
}

// SolveTSRFP decides the TSRFP instance exactly (via the branch-and-bound
// scheduler) and, when the optimal makespan is n+1, returns the implied
// Hamiltonian path. ok reports whether the n+1 bound was met.
func (t *TSRF) SolveTSRFP() (path []int, ok bool, err error) {
	sched, err := Optimal(t.Reqs, Options{Oracle: t.Oracle})
	if err != nil {
		return nil, false, err
	}
	if sched.Makespan() != t.OptimalMakespan() {
		return nil, false, nil
	}
	p, err := t.ScheduleToHamPath(sched)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// X1MHP is the Exact-One-Packet instance of Theorem 3, built from a TSRF
// by giving every first-level sensor its own packet and attaching to each
// branch an auxiliary chain u -> u' -> u” -> u”' whose only external
// compatibility is (u” -> u', s' -> s).
type X1MHP struct {
	Base   *TSRF
	Reqs   []Request
	Oracle *radio.TableOracle
}

// X1MHPFromTSRF performs the Theorem 3 construction. Auxiliary sensors of
// branch i (1-based) get ids base+4(i-1)+1 .. base+4(i-1)+4 for
// u, u', u”, u”' respectively, where base = 2n.
func X1MHPFromTSRF(t *TSRF) *X1MHP {
	n := t.N
	x := &X1MHP{Base: t, Oracle: radio.NewTableOracle()}
	base := 2 * n
	u := func(i, level int) int { return base + 4*(i-1) + level + 1 } // level 0..3
	id := 0
	nextID := func() int { id++; return id }

	for i := 1; i <= n; i++ {
		// Original branch, now with a first-level packet too.
		x.Reqs = append(x.Reqs,
			Request{ID: nextID(), Route: []int{t.second(i), t.first(i), t.head()}},
			Request{ID: nextID(), Route: []int{t.first(i), t.head()}},
		)
		// Auxiliary chain: u''' relays through u'' and u'; u'' relays
		// through u'; u' and u send directly to the head.
		x.Reqs = append(x.Reqs,
			Request{ID: nextID(), Route: []int{u(i, 3), u(i, 2), u(i, 1), t.head()}},
			Request{ID: nextID(), Route: []int{u(i, 2), u(i, 1), t.head()}},
			Request{ID: nextID(), Route: []int{u(i, 1), t.head()}},
			Request{ID: nextID(), Route: []int{u(i, 0), t.head()}},
		)
		// The single cross-branch compatibility of the construction.
		x.Oracle.AllowPair(
			radio.Transmission{From: u(i, 2), To: u(i, 1)},
			t.startTx(i),
		)
	}
	// Inherit the TSRF pairwise compatibilities.
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j {
				continue
			}
			if t.Oracle.PairAllowed(t.startTx(i), t.relayTx(j)) {
				x.Oracle.AllowPair(t.startTx(i), t.relayTx(j))
			}
		}
	}
	return x
}

// PacketsPerSensor verifies the X1MHP property: every sensor appears as
// the source of exactly one request. It returns an error naming the first
// violation.
func (x *X1MHP) PacketsPerSensor() error {
	count := make(map[int]int)
	for _, r := range x.Reqs {
		count[r.Route[0]]++
	}
	n := x.Base.N
	for i := 1; i <= n; i++ {
		sensors := []int{x.Base.first(i), x.Base.second(i)}
		base := 2 * n
		for l := 0; l < 4; l++ {
			sensors = append(sensors, base+4*(i-1)+l+1)
		}
		for _, s := range sensors {
			if count[s] != 1 {
				return fmt.Errorf("core: sensor %d holds %d packets, want exactly 1", s, count[s])
			}
		}
	}
	return nil
}
