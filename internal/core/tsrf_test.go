package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

func TestTSRFPathGraphHasSchedule(t *testing.T) {
	// A path graph trivially has a Hamiltonian path, so the TSRF must
	// schedule in n+1 slots.
	for n := 2; n <= 6; n++ {
		g := graph.NewUndirected(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v-1, v)
		}
		tsrf := TSRFFromGraph(g)
		path, ok, err := tsrf.SolveTSRFP()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("n=%d: no %d-slot schedule despite Hamiltonian path", n, n+1)
		}
		if !graph.IsHamiltonianPath(g, path) {
			t.Fatalf("n=%d: recovered path %v is not Hamiltonian", n, path)
		}
	}
}

func TestTSRFStarGraphHasNoFastSchedule(t *testing.T) {
	// K_{1,3} has no Hamiltonian path, so no 5-slot schedule exists.
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	tsrf := TSRFFromGraph(g)
	_, ok, err := tsrf.SolveTSRFP()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("star graph yielded an n+1 schedule; reduction broken")
	}
}

func TestTSRFReductionBothDirectionsRandom(t *testing.T) {
	// Lemma 1: the graph has a Hamiltonian path iff the TSRF schedules in
	// n+1 slots. Verify equivalence on random graphs.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		g := graph.NewUndirected(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.45 {
					g.AddEdge(u, v)
				}
			}
		}
		hasPath := graph.HasHamiltonianPath(g)
		tsrf := TSRFFromGraph(g)
		path, ok, err := tsrf.SolveTSRFP()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ok != hasPath {
			t.Fatalf("trial %d (n=%d): schedule-in-%d %v but Hamiltonian %v",
				trial, n, n+1, ok, hasPath)
		}
		if ok && !graph.IsHamiltonianPath(g, path) {
			t.Fatalf("trial %d: recovered non-Hamiltonian path %v", trial, path)
		}
	}
}

func TestHamPathToScheduleRoundTrip(t *testing.T) {
	// The paper's Fig. 4: a 5-vertex graph whose Hamiltonian path yields
	// a 6-slot schedule for the 5-branch TSRF.
	g := graph.NewUndirected(5)
	edges := [][2]int{{0, 2}, {2, 4}, {4, 1}, {1, 3}, {0, 1}, {2, 3}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	path := graph.HamiltonianPath(g)
	if path == nil {
		t.Fatal("test graph should have a Hamiltonian path")
	}
	tsrf := TSRFFromGraph(g)
	sched, err := tsrf.HamPathToSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 6 {
		t.Fatalf("makespan = %d want 6 (Fig. 4(c))", sched.Makespan())
	}
	if err := Validate(sched, tsrf.Reqs, tsrf.Oracle); err != nil {
		t.Fatal(err)
	}
	back, err := tsrf.ScheduleToHamPath(sched)
	if err != nil {
		t.Fatal(err)
	}
	for i := range path {
		if back[i] != path[i] {
			t.Fatalf("round trip mismatch: %v vs %v", back, path)
		}
	}
}

func TestHamPathToScheduleValidation(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tsrf := TSRFFromGraph(g)
	if _, err := tsrf.HamPathToSchedule([]int{0, 1}); err == nil {
		t.Error("short path should error")
	}
	if _, err := tsrf.HamPathToSchedule([]int{0, 1, 9}); err == nil {
		t.Error("out-of-range vertex should error")
	}
}

func TestScheduleToHamPathRejects(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tsrf := TSRFFromGraph(g)
	sched, err := tsrf.HamPathToSchedule([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	long := &Schedule{Slots: append(sched.Slots, nil), Start: sched.Start, Completed: sched.Completed}
	if _, err := tsrf.ScheduleToHamPath(long); err == nil {
		t.Error("wrong makespan should error")
	}
	dup := &Schedule{Slots: sched.Slots, Start: map[int]int{1: 0, 2: 0, 3: 1}, Completed: sched.Completed}
	if _, err := tsrf.ScheduleToHamPath(dup); err == nil {
		t.Error("duplicate start slot should error")
	}
}

func TestGreedyOnTSRFIsValidButMaybeSuboptimal(t *testing.T) {
	// The greedy must always produce a valid schedule on TSRF instances,
	// even when it misses the n+1 optimum — that is the point of the
	// NP-hardness result.
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		g := graph.NewUndirected(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		tsrf := TSRFFromGraph(g)
		sched, _, err := Greedy(tsrf.Reqs, Options{Oracle: tsrf.Oracle})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(sched, tsrf.Reqs, tsrf.Oracle); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.Makespan() < tsrf.OptimalMakespan() {
			t.Fatalf("trial %d: makespan %d beats the n+1 lower bound", trial, sched.Makespan())
		}
	}
}

func TestX1MHPConstruction(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tsrf := TSRFFromGraph(g)
	x := X1MHPFromTSRF(tsrf)
	// Theorem 3's defining property: every sensor has exactly one packet.
	if err := x.PacketsPerSensor(); err != nil {
		t.Fatal(err)
	}
	// 6 requests per branch (2 original + 4 auxiliary).
	if len(x.Reqs) != 6*3 {
		t.Fatalf("requests = %d want 18", len(x.Reqs))
	}
	// The greedy must schedule it.
	sched, _, err := Greedy(x.Reqs, Options{Oracle: x.Oracle})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(sched, x.Reqs, x.Oracle); err != nil {
		t.Fatal(err)
	}
}

func TestX1MHPAuxPairing(t *testing.T) {
	// The construction's single cross-branch compatibility must hold:
	// u'' -> u' of a branch pairs with that branch's s' -> s, and with
	// nothing else.
	g := graph.NewUndirected(2)
	g.AddEdge(0, 1)
	tsrf := TSRFFromGraph(g)
	x := X1MHPFromTSRF(tsrf)
	base := 2 * tsrf.N
	auxRelay := func(branch int) radio.Transmission {
		// u''(level 2) -> u'(level 1) of the branch.
		return radio.Transmission{From: base + 4*(branch-1) + 3, To: base + 4*(branch-1) + 2}
	}
	if !x.Oracle.Compatible([]radio.Transmission{auxRelay(1), tsrf.startTx(1)}) {
		t.Error("aux relay of branch 1 should pair with its own s'->s")
	}
	if x.Oracle.Compatible([]radio.Transmission{auxRelay(1), tsrf.startTx(2)}) {
		t.Error("aux relay must not pair with another branch's start")
	}
	if x.Oracle.Compatible([]radio.Transmission{auxRelay(1), tsrf.relayTx(2)}) {
		t.Error("aux relay must not pair with a first-level relay")
	}
	// The inherited TSRF compatibility survives the construction.
	if !x.Oracle.Compatible([]radio.Transmission{tsrf.startTx(1), tsrf.relayTx(2)}) {
		t.Error("edge {v0,v1} compatibility should be inherited")
	}
}
