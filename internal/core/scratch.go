package core

import "repro/internal/radio"

// GreedyScratch holds the reusable buffers of a pipelined Greedy run: the
// schedule's slot list (inner slot buckets included), the result maps,
// the stats maps, the activity flags, the arrival ring and the oracle
// scratch group. Pass one via Options.Scratch to make repeated polling
// runs allocation-free in steady state.
//
// The Schedule and Stats returned by a scratch-backed Greedy call point
// into the scratch: they are valid until the next Greedy call with the
// same scratch. Callers that retain schedules (tracing, replay) must not
// pass a scratch. The zero value is ready to use; a scratch serves one
// goroutine at a time.
type GreedyScratch struct {
	sched    Schedule
	stats    Stats
	order    []int
	active   []bool
	arrivals [][]flight
	group    []radio.Transmission
}

// reset re-arms the scratch for a run over len(reqs) requests and returns
// the schedule and stats to fill, with maps cleared and every slice
// truncated (backing arrays kept).
func (gs *GreedyScratch) reset(nReqs int) (*Schedule, *Stats) {
	sched := &gs.sched
	sched.Slots = sched.Slots[:0]
	if sched.Start == nil {
		sched.Start = make(map[int]int, nReqs)
		sched.Completed = make(map[int]int, nReqs)
	} else {
		clear(sched.Start)
		clear(sched.Completed)
	}
	st := &gs.stats
	if st.TxCount == nil {
		st.TxCount = make(map[int]int)
		st.RxCount = make(map[int]int)
		st.LastActive = make(map[int]int)
	} else {
		clear(st.TxCount)
		clear(st.RxCount)
		clear(st.LastActive)
	}
	st.Slots, st.Retries = 0, 0
	return sched, st
}

// bools returns gs.active resized to n; contents are unspecified and the
// caller overwrites every entry.
func (gs *GreedyScratch) bools(n int) []bool {
	if cap(gs.active) >= n {
		gs.active = gs.active[:n]
	} else {
		gs.active = make([]bool, n)
	}
	return gs.active
}

// ring returns the arrival ring resized to n buckets, every bucket
// emptied with its storage kept.
func (gs *GreedyScratch) ring(n int) [][]flight {
	if cap(gs.arrivals) >= n {
		gs.arrivals = gs.arrivals[:n]
	} else {
		gs.arrivals = append(gs.arrivals[:cap(gs.arrivals)], make([][]flight, n-cap(gs.arrivals))...)
	}
	for i := range gs.arrivals {
		gs.arrivals[i] = gs.arrivals[i][:0]
	}
	return gs.arrivals
}
