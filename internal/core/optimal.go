package core

import (
	"fmt"

	"repro/internal/radio"
)

// Optimal computes a minimum-makespan pipelined (no-delay) polling
// schedule by branch-and-bound over per-slot admission decisions. It is
// exponential — the MHP problem is NP-hard — and intended for small
// instances (roughly up to a dozen requests) to quantify the greedy's
// optimality gap and to verify the NP-hardness reductions.
//
// The search is seeded with the greedy solution as the initial upper
// bound. The compatibility oracle must be monotone: adding a transmission
// to an incompatible group never makes it compatible (true for SINR-based
// and pairwise-table oracles).
func Optimal(reqs []Request, opt Options) (*Schedule, error) {
	if opt.Oracle == nil {
		return nil, fmt.Errorf("core: Options.Oracle is required")
	}
	if opt.Loss != nil {
		return nil, fmt.Errorf("core: Optimal is defined for lossless channels")
	}
	if opt.AllowDelay {
		return nil, fmt.Errorf("core: Optimal schedules without packet delay (Theorem 2: delay cannot help)")
	}
	if len(reqs) > 16 {
		return nil, fmt.Errorf("core: Optimal limited to 16 requests, got %d", len(reqs))
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if len(reqs) == 0 {
		return &Schedule{Start: map[int]int{}, Completed: map[int]int{}}, nil
	}

	// Upper bound from greedy.
	gsched, _, err := Greedy(reqs, Options{
		Oracle:        opt.Oracle,
		MaxConcurrent: opt.MaxConcurrent,
		MaxSlots:      opt.MaxSlots,
	})
	if err != nil {
		return nil, err
	}
	b := &bnb{
		reqs:   reqs,
		oracle: opt.Oracle,
		m:      opt.maxConcurrent(),
		best:   gsched.Makespan(),
		bestStarts: func() []int {
			starts := make([]int, len(reqs))
			for i, r := range reqs {
				starts[i] = gsched.Start[r.ID]
			}
			return starts
		}(),
	}
	starts := make([]int, len(reqs))
	for i := range starts {
		starts[i] = -1
	}
	b.search(0, starts, nil, len(reqs))
	return scheduleFromStarts(reqs, b.bestStarts), nil
}

type bnb struct {
	reqs       []Request
	oracle     radio.CompatibilityOracle
	m          int
	best       int // best makespan found so far
	bestStarts []int
}

// search explores admission decisions for the given slot. starts[i] is
// request i's start slot or -1; slots holds the transmissions committed to
// each slot so far; unstarted counts requests with starts[i] == -1.
func (b *bnb) search(slot int, starts []int, slots [][]radio.Transmission, unstarted int) {
	// Makespan so far (from committed transmissions).
	if unstarted == 0 {
		if len(slots) < b.best {
			b.best = len(slots)
			copy(b.bestStarts, starts)
		}
		return
	}
	// Lower bounds. Any unstarted request r arrives no earlier than slot
	// slot+Hops-1, so makespan >= slot+Hops. All remaining packets arrive
	// at the head in distinct slots, so makespan >= slot + arrivals still
	// pending at or after this slot.
	lb := 0
	pendingArrivals := 0
	for i, r := range b.reqs {
		switch {
		case starts[i] < 0:
			pendingArrivals++
			if v := slot + r.Hops(); v > lb {
				lb = v
			}
		case starts[i]+r.Hops()-1 >= slot:
			pendingArrivals++
		}
	}
	if v := slot + pendingArrivals; v > lb {
		lb = v
	}
	if v := len(slots); v > lb {
		lb = v
	}
	if lb >= b.best {
		return
	}

	// Candidates that can start at this slot, respecting monotone
	// compatibility against already-committed transmissions.
	var cands []int
	for i := range b.reqs {
		if starts[i] < 0 && b.fitsAt(b.reqs[i], slot, slots) {
			cands = append(cands, i)
		}
	}

	inFlight := false
	for i, r := range b.reqs {
		if starts[i] >= 0 && starts[i]+r.Hops()-1 >= slot {
			inFlight = true
			break
		}
	}

	// Enumerate subsets of candidates via DFS; each accepted candidate is
	// committed before considering the next, so compatibility composes.
	var extend func(ci int, picked int, slots [][]radio.Transmission)
	extend = func(ci int, picked int, slots [][]radio.Transmission) {
		if ci == len(cands) {
			if picked == 0 && !inFlight {
				// Idle slot with nothing in flight can never help.
				return
			}
			b.search(slot+1, starts, slots, unstarted-picked)
			return
		}
		idx := cands[ci]
		// Branch 1: start cands[ci] now (if still compatible given
		// earlier picks in this subset).
		if b.fitsAt(b.reqs[idx], slot, slots) {
			committed := commit(slots, b.reqs[idx], slot)
			starts[idx] = slot
			extend(ci+1, picked+1, committed)
			starts[idx] = -1
		}
		// Branch 2: skip it.
		extend(ci+1, picked, slots)
	}
	extend(0, 0, slots)
}

func (b *bnb) fitsAt(r Request, slot int, slots [][]radio.Transmission) bool {
	group := make([]radio.Transmission, 0, 8)
	for k := 0; k < r.Hops(); k++ {
		s := slot + k
		var existing []radio.Transmission
		if s < len(slots) {
			existing = slots[s]
		}
		if b.m > 0 && len(existing)+1 > b.m {
			return false
		}
		group = group[:0]
		group = append(group, existing...)
		group = append(group, r.Tx(k))
		if !b.oracle.Compatible(group) {
			return false
		}
	}
	return true
}

// commit returns a copy of slots with r's hops added starting at slot.
func commit(slots [][]radio.Transmission, r Request, slot int) [][]radio.Transmission {
	end := slot + r.Hops()
	capacity := end
	if len(slots) > capacity {
		capacity = len(slots)
	}
	out := make([][]radio.Transmission, len(slots), capacity)
	copy(out, slots)
	for len(out) < end {
		out = append(out, nil)
	}
	for k := 0; k < r.Hops(); k++ {
		s := slot + k
		out[s] = append(append([]radio.Transmission(nil), out[s]...), r.Tx(k))
	}
	return out
}

// scheduleFromStarts materializes a schedule from per-request start slots.
func scheduleFromStarts(reqs []Request, starts []int) *Schedule {
	sched := &Schedule{Start: make(map[int]int), Completed: make(map[int]int)}
	for i, r := range reqs {
		s := starts[i]
		sched.Start[r.ID] = s
		done := s + r.Hops() - 1
		for len(sched.Slots) <= done {
			sched.Slots = append(sched.Slots, nil)
		}
		for k := 0; k < r.Hops(); k++ {
			sched.Slots[s+k] = append(sched.Slots[s+k], r.Tx(k))
		}
		sched.Completed[r.ID] = done
	}
	return sched
}
