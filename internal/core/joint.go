package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
)

// Joint Multi-Hop Routing and Polling (Section III-E). The paper defines
// a sensor's power consumption rate as a*load + b*T — transmission load
// plus idle listening over the polling time T — and asks for relaying
// paths AND a schedule minimizing the maximum rate. JMHRP is NP-hard
// (it contains TSRFP), which is why the system decomposes into the flow
// routing of Section III-A followed by the greedy scheduler. The exact
// solver here enumerates all routings on tiny clusters and solves each
// with the branch-and-bound scheduler, so the decomposition's optimality
// gap can be measured.

// JointInstance is one JMHRP problem: a connectivity graph, per-sensor
// demand, the interference oracle and the rate coefficients.
type JointInstance struct {
	G      *graph.Undirected
	Head   int
	Demand []int
	Oracle radio.CompatibilityOracle
	// Alpha weights transmission load, Beta weights polling time in the
	// power consumption rate alpha*load + beta*T.
	Alpha, Beta float64
}

// JointSolution is one routing-plus-schedule outcome.
type JointSolution struct {
	// Routes[v] is the relaying path chosen for sensor v.
	Routes map[int][]int
	// Makespan is the schedule length T in slots.
	Makespan int
	// MaxRate is the maximum per-sensor power consumption rate
	// alpha*load + beta*T.
	MaxRate float64
}

// rate computes the max power consumption rate for the given routes and
// makespan.
func (ji *JointInstance) rate(routes map[int][]int, makespan int) (float64, error) {
	load := make([]int, ji.G.N())
	for v, d := range ji.Demand {
		if d == 0 {
			continue
		}
		r := routes[v]
		if r == nil {
			return 0, fmt.Errorf("core: sensor %d has demand but no route", v)
		}
		for _, x := range r[:len(r)-1] {
			load[x] += d
		}
	}
	max := 0.0
	for v := range load {
		if v == ji.Head {
			continue
		}
		rate := ji.Alpha*float64(load[v]) + ji.Beta*float64(makespan)
		if rate > max {
			max = rate
		}
	}
	return max, nil
}

// requestsFor expands routes into polling requests.
func (ji *JointInstance) requestsFor(routes map[int][]int) []Request {
	var reqs []Request
	id := 0
	for v := 0; v < ji.G.N(); v++ {
		for k := 0; k < ji.Demand[v]; k++ {
			id++
			reqs = append(reqs, Request{ID: id, Route: routes[v]})
		}
	}
	return reqs
}

// SolveJointExact enumerates every combination of simple relaying paths
// (up to maxPathsPerSensor shortest-ish candidates per sensor, to bound
// the product) and schedules each with the exact branch-and-bound solver,
// returning the routing+schedule minimizing the maximum power rate.
// Exponential; intended for clusters of at most ~6 demand-bearing sensors.
func (ji *JointInstance) SolveJointExact(maxPathsPerSensor int) (*JointSolution, error) {
	var sensors []int
	for v, d := range ji.Demand {
		if d > 0 {
			if v == ji.Head {
				return nil, fmt.Errorf("core: head cannot have demand")
			}
			sensors = append(sensors, v)
		}
	}
	if len(sensors) > 6 {
		return nil, fmt.Errorf("core: joint solver limited to 6 demand-bearing sensors, got %d", len(sensors))
	}
	cands := make([][][]int, len(sensors))
	for i, v := range sensors {
		paths := simplePaths(ji.G, v, ji.Head, maxPathsPerSensor)
		if len(paths) == 0 {
			return nil, fmt.Errorf("core: sensor %d has no path to the head", v)
		}
		cands[i] = paths
	}

	best := (*JointSolution)(nil)
	routes := make(map[int][]int, len(sensors))
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(sensors) {
			reqs := ji.requestsFor(routes)
			sched, err := Optimal(reqs, Options{Oracle: ji.Oracle})
			if err != nil {
				return err
			}
			rate, err := ji.rate(routes, sched.Makespan())
			if err != nil {
				return err
			}
			if best == nil || rate < best.MaxRate {
				cp := make(map[int][]int, len(routes))
				for v, r := range routes {
					cp[v] = append([]int(nil), r...)
				}
				best = &JointSolution{Routes: cp, Makespan: sched.Makespan(), MaxRate: rate}
			}
			return nil
		}
		for _, p := range cands[i] {
			routes[sensors[i]] = p
			if err := enumerate(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0); err != nil {
		return nil, err
	}
	return best, nil
}

// SolveDecomposed evaluates the paper's decomposition on the same
// instance: the caller supplies the routes chosen by the flow computation
// and the scheduler to use (exact or greedy); the rate is measured the
// same way.
func (ji *JointInstance) SolveDecomposed(routes map[int][]int, exact bool) (*JointSolution, error) {
	reqs := ji.requestsFor(routes)
	var makespan int
	if exact {
		sched, err := Optimal(reqs, Options{Oracle: ji.Oracle})
		if err != nil {
			return nil, err
		}
		makespan = sched.Makespan()
	} else {
		sched, _, err := Greedy(reqs, Options{Oracle: ji.Oracle})
		if err != nil {
			return nil, err
		}
		makespan = sched.Makespan()
	}
	rate, err := ji.rate(routes, makespan)
	if err != nil {
		return nil, err
	}
	return &JointSolution{Routes: routes, Makespan: makespan, MaxRate: rate}, nil
}

// simplePaths returns up to max simple paths from src to dst, shortest
// first. All simple paths are enumerated (with a generous safety cap)
// before sorting, so truncation keeps the genuinely shortest candidates.
func simplePaths(g *graph.Undirected, src, dst, max int) [][]int {
	if max < 1 {
		max = 1
	}
	const hardCap = 4096 // safety bound; tiny joint instances stay far below
	var out [][]int
	visited := make([]bool, g.N())
	var path []int
	var dfs func(v int)
	dfs = func(v int) {
		if len(out) >= hardCap {
			return
		}
		path = append(path, v)
		visited[v] = true
		if v == dst {
			out = append(out, append([]int(nil), path...))
		} else {
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					dfs(w)
				}
			}
		}
		visited[v] = false
		path = path[:len(path)-1]
	}
	dfs(src)
	// Shortest first, then truncate.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && len(out[j]) < len(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}
