package core

import (
	"math/rand"
	"testing"

	"repro/internal/radio"
)

func TestOrderHelpers(t *testing.T) {
	reqs := []Request{
		{ID: 1, Route: []int{10, 11, 0}},     // 2 hops
		{ID: 2, Route: []int{20, 0}},         // 1 hop
		{ID: 3, Route: []int{30, 31, 32, 0}}, // 3 hops
		{ID: 4, Route: []int{40, 41, 0}},     // 2 hops
	}
	if got := OrderNatural(reqs); got[0] != 0 || got[3] != 3 {
		t.Fatalf("natural = %v", got)
	}
	if got := OrderLongestFirst(reqs); got[0] != 2 || got[3] != 1 {
		t.Fatalf("longest-first = %v", got)
	}
	if got := OrderShortestFirst(reqs); got[0] != 1 || got[3] != 2 {
		t.Fatalf("shortest-first = %v", got)
	}
	// Stability: the two 2-hop requests keep relative order.
	lf := OrderLongestFirst(reqs)
	if lf[1] != 0 || lf[2] != 3 {
		t.Fatalf("ties not stable: %v", lf)
	}
}

func TestOrdersAreValidPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		reqs, o := randomInstance(rng)
		for _, fn := range []func([]Request) []int{
			OrderNatural, OrderLongestFirst, OrderShortestFirst,
		} {
			order := fn(reqs)
			sched, _, err := Greedy(reqs, Options{Oracle: o, Order: order})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := Validate(sched, reqs, o); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestProbLoss(t *testing.T) {
	// Per-transmission probabilities: one dead link, one solid.
	dead := radio.Transmission{From: 1, To: 2}
	solid := radio.Transmission{From: 3, To: 4}
	loss := ProbLoss(5, func(tx radio.Transmission) float64 {
		if tx == dead {
			return 1
		}
		return 0
	})
	for s := 0; s < 20; s++ {
		if !loss(s, dead) {
			t.Fatal("p=1 link must always lose")
		}
		if loss(s, solid) {
			t.Fatal("p=0 link must never lose")
		}
	}
	// Determinism for intermediate probabilities.
	mid := ProbLoss(9, func(radio.Transmission) float64 { return 0.5 })
	if mid(3, solid) != mid(3, solid) {
		t.Fatal("ProbLoss must be deterministic")
	}
}
