// Package core implements the paper's primary contribution: collision-free
// multi-hop polling schedules inside one cluster.
//
// The cluster head controls sensors in a time-slotted manner. At the
// beginning of every slot it broadcasts a polling message naming the
// sensors that transmit and the sensors that receive; relays forward a
// received packet in the immediately following slot ("a pipelined
// system, and the polling message acts as the clock"). Finding a
// minimum-makespan schedule — the Multi-Hop Polling (MHP) problem — is
// NP-hard (Lemma 1/Theorems 1-4, reproduced in tsrf.go), so the head runs
// the fast on-line greedy algorithm of the paper's Table 1 (greedy.go),
// which also handles packet loss by re-polling. An exact branch-and-bound
// solver for small instances (optimal.go) quantifies the greedy's gap.
package core

import (
	"fmt"
	"strings"

	"repro/internal/radio"
)

// Request is one polling request: one data packet that must travel from a
// sensor along its fixed relaying path to the cluster head. A sensor with
// k packets to send contributes k requests sharing the same route.
type Request struct {
	// ID identifies the request; IDs must be unique within a polling run.
	ID int
	// Route is the packet's relaying path: Route[0] is the source sensor,
	// Route[len-1] the cluster head. It must have at least 2 nodes.
	Route []int
}

// Hops returns the number of transmissions the packet needs.
func (r Request) Hops() int { return len(r.Route) - 1 }

// Tx returns the transmission performed at hop k (0-based).
func (r Request) Tx(k int) radio.Transmission {
	return radio.Transmission{From: r.Route[k], To: r.Route[k+1]}
}

// Validate checks structural validity of the request. Routes are hop
// paths inside one cluster — a handful of nodes — so the duplicate check
// scans the prefix instead of building a set; Validate runs once per
// request per polling run and must not allocate.
func (r Request) Validate() error {
	if len(r.Route) < 2 {
		return fmt.Errorf("core: request %d has short route %v", r.ID, r.Route)
	}
	for i, v := range r.Route {
		if v < 0 {
			return fmt.Errorf("core: request %d routes through negative node", r.ID)
		}
		for _, w := range r.Route[:i] {
			if w == v {
				return fmt.Errorf("core: request %d has a routing loop: %v", r.ID, r.Route)
			}
		}
	}
	return nil
}

// Schedule is a slotted polling schedule: Slots[s] lists the transmissions
// the head instructs for slot s. For pipelined (no-delay) scheduling a
// request admitted at slot s occupies slots s..s+Hops-1 with its
// consecutive hops.
type Schedule struct {
	Slots [][]radio.Transmission
	// Start maps request ID to the slot of its final (successful)
	// admission.
	Start map[int]int
	// Completed maps request ID to the slot in which the head received
	// the packet.
	Completed map[int]int
}

// Makespan returns the number of slots the schedule uses.
func (s *Schedule) Makespan() int { return len(s.Slots) }

// String renders the schedule slot by slot, one line per slot — the
// polling messages the head would broadcast.
func (s *Schedule) String() string {
	var b strings.Builder
	for i, group := range s.Slots {
		fmt.Fprintf(&b, "slot %d:", i+1)
		if len(group) == 0 {
			b.WriteString(" (idle)")
		}
		for _, tx := range group {
			fmt.Fprintf(&b, " %v", tx)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Transmissions returns the total number of scheduled transmissions,
// including those wasted by losses.
func (s *Schedule) Transmissions() int {
	n := 0
	for _, slot := range s.Slots {
		n += len(slot)
	}
	return n
}

// LossFn decides whether the given transmission, scheduled in the given
// slot, is lost. A nil LossFn means a lossless channel. Implementations
// must be deterministic per (slot, tx) pair within one run if reproducible
// schedules are desired; see RandomLoss.
type LossFn func(slot int, tx radio.Transmission) bool

// Options configures a polling run.
type Options struct {
	// Oracle answers group-compatibility questions; required.
	Oracle radio.CompatibilityOracle
	// MaxConcurrent caps the number of concurrent transmissions per slot
	// (the paper's M: the head only knows compatibility of groups of at
	// most M transmissions). Zero means "use Oracle.MaxGroup()", and if
	// that is also zero the group size is unbounded.
	MaxConcurrent int
	// AllowDelay switches to the delay-allowed variant in which a relay
	// may hold a packet for later slots. The paper proves delay does not
	// help makespan (Theorem 2); the variant exists for the ablation.
	AllowDelay bool
	// Loss injects packet loss; nil means lossless.
	Loss LossFn
	// MaxSlots aborts runs that exceed this many slots (a safety net for
	// pathological loss rates). Zero means 64 * (total hops + 1).
	MaxSlots int
	// Order optionally fixes the scan order of requests (indices into the
	// request slice). Nil means natural order. The paper's algorithm
	// scans "according to an arbitrarily predetermined order".
	Order []int
	// Scratch, when non-nil, donates reusable buffers to the run and
	// receives them back: the returned Schedule and Stats then point into
	// the scratch and are valid only until the next Greedy call with the
	// same scratch. Behavior is otherwise identical. Only the pipelined
	// (default) path uses it; the delay-allowed ablation always allocates
	// fresh.
	Scratch *GreedyScratch
}

func (o *Options) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	if o.Oracle != nil {
		return o.Oracle.MaxGroup() // 0 = unbounded
	}
	return 0
}

// Stats reports what physically happened during a polling run.
type Stats struct {
	// Slots is the realized makespan including retransmissions.
	Slots int
	// TxCount[v] counts packets node v actually transmitted.
	TxCount map[int]int
	// RxCount[v] counts slots node v spent receiving (successful or not).
	RxCount map[int]int
	// Retries counts re-polls caused by packet loss.
	Retries int
	// LastActive[v] is the last slot index in which v transmitted or
	// received; sensors absent from the map were never active. The
	// sector layer uses this for early-sleep accounting.
	LastActive map[int]int
}

func newStats() *Stats {
	return &Stats{
		TxCount:    make(map[int]int),
		RxCount:    make(map[int]int),
		LastActive: make(map[int]int),
	}
}

func (st *Stats) markTx(v, slot int) {
	st.TxCount[v]++
	st.touch(v, slot)
}

func (st *Stats) markRx(v, slot int) {
	st.RxCount[v]++
	st.touch(v, slot)
}

func (st *Stats) touch(v, slot int) {
	if cur, ok := st.LastActive[v]; !ok || slot > cur {
		st.LastActive[v] = slot
	}
}
