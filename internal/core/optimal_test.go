package core

import (
	"math/rand"
	"testing"

	"repro/internal/radio"
)

func TestOptimalFig2(t *testing.T) {
	reqs, o := fig2Instance()
	sched, err := Optimal(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 2 {
		t.Fatalf("optimal makespan = %d want 2", sched.Makespan())
	}
	if err := Validate(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		reqs, o := randomInstance(rng)
		g, _, err := Greedy(reqs, Options{Oracle: o})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Optimal(reqs, Options{Oracle: o})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if opt.Makespan() > g.Makespan() {
			t.Fatalf("trial %d: optimal %d > greedy %d", trial, opt.Makespan(), g.Makespan())
		}
		if err := Validate(opt, reqs, o); err != nil {
			t.Fatalf("trial %d: optimal schedule invalid: %v", trial, err)
		}
		// Same lower bounds as greedy.
		if opt.Makespan() < len(reqs) {
			t.Fatalf("trial %d: optimal %d below arrival bound %d", trial, opt.Makespan(), len(reqs))
		}
	}
}

func TestOptimalBeatsBadGreedyOrder(t *testing.T) {
	// A case where greedy's fixed scan order is suboptimal: two long
	// requests that conflict pairwise and one short one compatible with
	// the second long one only. Scanning short-first wastes parallelism.
	long1 := Request{ID: 1, Route: []int{10, 11, 0}}
	long2 := Request{ID: 2, Route: []int{20, 21, 0}}
	short := Request{ID: 3, Route: []int{30, 0}}
	o := radio.NewTableOracle()
	// short's tx is compatible with long2's first hop only.
	o.AllowPair(short.Tx(0), long2.Tx(0))
	reqs := []Request{short, long1, long2}
	g, _, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Makespan() > g.Makespan() {
		t.Fatalf("optimal %d > greedy %d", opt.Makespan(), g.Makespan())
	}
	if err := Validate(opt, reqs, o); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalRejectsUnsupportedModes(t *testing.T) {
	reqs, o := fig2Instance()
	if _, err := Optimal(reqs, Options{Oracle: o, Loss: RandomLoss(1, 0.5)}); err == nil {
		t.Error("lossy optimal should error")
	}
	if _, err := Optimal(reqs, Options{Oracle: o, AllowDelay: true}); err == nil {
		t.Error("delay-allowed optimal should error")
	}
	if _, err := Optimal(reqs, Options{}); err == nil {
		t.Error("missing oracle should error")
	}
	big := make([]Request, 17)
	for i := range big {
		big[i] = Request{ID: i + 1, Route: []int{i + 1, 0}}
	}
	if _, err := Optimal(big, Options{Oracle: o}); err == nil {
		t.Error("oversize instance should error")
	}
}

func TestOptimalEmpty(t *testing.T) {
	o := radio.NewTableOracle()
	sched, err := Optimal(nil, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 0 {
		t.Fatalf("empty optimal makespan = %d", sched.Makespan())
	}
}

func TestOptimalRespectsM(t *testing.T) {
	o := radio.NewTableOracle()
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{ID: i + 1, Route: []int{10 + i, 20 + i}})
	}
	for i := range reqs {
		for j := i + 1; j < len(reqs); j++ {
			o.AllowPair(reqs[i].Tx(0), reqs[j].Tx(0))
		}
	}
	sched, err := Optimal(reqs, Options{Oracle: o, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 2 {
		t.Fatalf("makespan = %d want 2", sched.Makespan())
	}
	for s, g := range sched.Slots {
		if len(g) > 2 {
			t.Fatalf("slot %d has %d > M transmissions", s, len(g))
		}
	}
}

func TestValidateRejectsBrokenSchedules(t *testing.T) {
	reqs, o := fig2Instance()
	sched, _, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	// Remove a completion.
	delete(sched.Completed, 1)
	if Validate(sched, reqs, o) == nil {
		t.Error("missing completion should fail validation")
	}
	sched, _, _ = Greedy(reqs, Options{Oracle: o})
	// Tamper with a slot to create a collision.
	sched.Slots[1] = append(sched.Slots[1], radio.Transmission{From: 9, To: 0})
	if Validate(sched, reqs, o) == nil {
		t.Error("duplicate-receiver slot should fail validation")
	}
	sched, _, _ = Greedy(reqs, Options{Oracle: o})
	// Shift a start to break pipelining.
	sched.Start[1]++
	if Validate(sched, reqs, o) == nil {
		t.Error("shifted start should fail validation")
	}
	// Never-admitted request.
	sched, _, _ = Greedy(reqs, Options{Oracle: o})
	extra := append(append([]Request(nil), reqs...), Request{ID: 99, Route: []int{7, 0}})
	if Validate(sched, extra, o) == nil {
		t.Error("unknown request should fail validation")
	}
}

func TestValidateDelayedRejects(t *testing.T) {
	reqs := []Request{{ID: 1, Route: []int{2, 1, 0}}}
	o := radio.NewTableOracle()
	sched, _, err := Greedy(reqs, Options{Oracle: o, AllowDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateDelayed(sched, reqs, o); err != nil {
		t.Fatal(err)
	}
	// Drop the second hop.
	broken := &Schedule{
		Slots:     [][]radio.Transmission{{reqs[0].Tx(0)}},
		Start:     map[int]int{1: 0},
		Completed: map[int]int{1: 0},
	}
	if ValidateDelayed(broken, reqs, o) == nil {
		t.Error("missing hop should fail delayed validation")
	}
	broken.Completed = map[int]int{}
	if ValidateDelayed(broken, reqs, o) == nil {
		t.Error("missing completion should fail delayed validation")
	}
}

func TestRequestAccessors(t *testing.T) {
	r := Request{ID: 5, Route: []int{3, 2, 0}}
	if r.Hops() != 2 {
		t.Fatalf("Hops = %d", r.Hops())
	}
	if r.Tx(0) != (radio.Transmission{From: 3, To: 2}) {
		t.Fatalf("Tx(0) = %v", r.Tx(0))
	}
	if r.Tx(1) != (radio.Transmission{From: 2, To: 0}) {
		t.Fatalf("Tx(1) = %v", r.Tx(1))
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Request{ID: 1, Route: []int{-1, 0}}).Validate() == nil {
		t.Error("negative node should fail")
	}
}

func TestScheduleTransmissions(t *testing.T) {
	reqs, o := fig2Instance()
	sched, _, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Transmissions() != 3 {
		t.Fatalf("Transmissions = %d want 3", sched.Transmissions())
	}
}

func TestScheduleString(t *testing.T) {
	reqs, o := fig2Instance()
	sched, _, err := Greedy(reqs, Options{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	got := sched.String()
	want := "slot 1: 2->1 3->0\nslot 2: 1->0\n"
	if got != want {
		t.Fatalf("String() = %q want %q", got, want)
	}
	empty := &Schedule{Slots: [][]radio.Transmission{nil}}
	if empty.String() != "slot 1: (idle)\n" {
		t.Fatalf("idle slot rendering = %q", empty.String())
	}
}
