package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// jointFixture builds a 4-sensor diamond cluster where routing matters: a
// second-level sensor can relay through either branch.
func jointFixture() *JointInstance {
	g := graph.NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(1, 4)
	o := radio.NewTableOracle()
	// Branch transmissions across different branches are compatible.
	pairs := [][2]radio.Transmission{
		{{From: 3, To: 1}, {From: 2, To: 0}},
		{{From: 3, To: 2}, {From: 1, To: 0}},
		{{From: 4, To: 1}, {From: 2, To: 0}},
	}
	for _, p := range pairs {
		o.AllowPair(p[0], p[1])
	}
	return &JointInstance{
		G:      g,
		Head:   0,
		Demand: []int{0, 1, 1, 1, 1},
		Oracle: o,
		Alpha:  1,
		Beta:   0.5,
	}
}

func TestJointExactBeatsOrMatchesDecomposed(t *testing.T) {
	ji := jointFixture()
	joint, err := ji.SolveJointExact(4)
	if err != nil {
		t.Fatal(err)
	}
	// Decomposed: route 3 through 1 (a deliberately bad choice that
	// overloads sensor 1, which also relays 4).
	bad := map[int][]int{
		1: {1, 0}, 2: {2, 0}, 3: {3, 1, 0}, 4: {4, 1, 0},
	}
	dec, err := ji.SolveDecomposed(bad, true)
	if err != nil {
		t.Fatal(err)
	}
	if joint.MaxRate > dec.MaxRate {
		t.Fatalf("joint optimum %v worse than a fixed routing %v", joint.MaxRate, dec.MaxRate)
	}
	// The joint optimum must route 3 via 2 to balance the load.
	if r := joint.Routes[3]; r[1] != 2 {
		t.Fatalf("joint optimum routes 3 via %d, want 2 (load balance)", r[1])
	}
}

func TestJointSolverValidation(t *testing.T) {
	ji := jointFixture()
	ji.Demand = []int{1, 1, 1, 1, 1} // head demand
	if _, err := ji.SolveJointExact(3); err == nil {
		t.Error("head demand should error")
	}
	ji = jointFixture()
	big := graph.NewUndirected(9)
	for v := 1; v < 9; v++ {
		big.AddEdge(0, v)
	}
	ji.G = big
	ji.Demand = []int{0, 1, 1, 1, 1, 1, 1, 1, 1}
	if _, err := ji.SolveJointExact(2); err == nil {
		t.Error("oversize instance should error")
	}
	// Unreachable sensor.
	g2 := graph.NewUndirected(3)
	g2.AddEdge(0, 1)
	ji2 := &JointInstance{G: g2, Head: 0, Demand: []int{0, 0, 1},
		Oracle: radio.NewTableOracle(), Alpha: 1, Beta: 1}
	if _, err := ji2.SolveJointExact(2); err == nil {
		t.Error("unreachable sensor should error")
	}
}

func TestSimplePaths(t *testing.T) {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	paths := simplePaths(g, 3, 0, 10)
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		if p[0] != 3 || p[len(p)-1] != 0 {
			t.Fatalf("bad endpoints: %v", p)
		}
	}
	// Truncation keeps the shortest.
	one := simplePaths(g, 3, 0, 1)
	if len(one) != 1 {
		t.Fatalf("truncated = %v", one)
	}
}

func TestJointDecomposedGreedyNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 10; trial++ {
		ji := jointFixture()
		// Random routing choices among candidates.
		routes := map[int][]int{1: {1, 0}, 2: {2, 0}, 4: {4, 1, 0}}
		if rng.Intn(2) == 0 {
			routes[3] = []int{3, 1, 0}
		} else {
			routes[3] = []int{3, 2, 0}
		}
		exact, err := ji.SolveDecomposed(routes, true)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := ji.SolveDecomposed(routes, false)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Makespan < exact.Makespan {
			t.Fatalf("trial %d: greedy %d beat exact %d", trial, greedy.Makespan, exact.Makespan)
		}
	}
}
