package repro

// One benchmark per figure of the paper's evaluation (Section VI) plus
// the ablation benches DESIGN.md calls out. Each benchmark prints the
// regenerated table once (on the first iteration) and then times the
// sweep, so `go test -bench=.` both reproduces and profiles every
// experiment. The quick sweeps keep iterations tractable; run
// cmd/experiments for the full-resolution tables.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/topo"
)

var printOnce sync.Map

func printFirst(b *testing.B, key, table string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", table)
	}
}

// BenchmarkFig7aActiveTime regenerates Fig. 7(a): percentage of active
// time as a function of cluster size and data generation rate.
func BenchmarkFig7aActiveTime(b *testing.B) {
	cfg := exp.QuickFig7a()
	for i := 0; i < b.N; i++ {
		points, err := exp.Fig7a(exp.Options{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "7a", exp.RenderFig7a(points))
	}
}

// BenchmarkFig7bThroughput regenerates Fig. 7(b): polling vs. S-MAC+AODV
// throughput across offered loads and duty cycles.
func BenchmarkFig7bThroughput(b *testing.B) {
	cfg := exp.QuickFig7b()
	for i := 0; i < b.N; i++ {
		points, err := exp.Fig7b(exp.Options{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "7b", exp.RenderFig7b(points))
	}
}

// BenchmarkFig7cLifetime regenerates Fig. 7(c): the sector/no-sector
// lifetime ratio across cluster sizes.
func BenchmarkFig7cLifetime(b *testing.B) {
	cfg := exp.QuickFig7c()
	for i := 0; i < b.N; i++ {
		points, err := exp.Fig7c(exp.Options{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "7c", exp.RenderFig7c(points))
	}
}

// benchCluster caches one deployment for the scheduler-level benches.
func benchCluster(b *testing.B, n int) *topo.Cluster {
	b.Helper()
	c, err := topo.Build(topo.DefaultConfig(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchGreedyM(b *testing.B, m int) {
	c := benchCluster(b, 30)
	p := cluster.DefaultParams()
	p.M = m
	p.RateBps = 40
	p.LossProb = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cluster.NewRunner(c, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunCycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyM* ablate the compatibility degree M (paper Section
// III-D: the head knows compatibility of groups of at most M).
func BenchmarkGreedyM1(b *testing.B) { benchGreedyM(b, 1) }
func BenchmarkGreedyM2(b *testing.B) { benchGreedyM(b, 2) }
func BenchmarkGreedyM3(b *testing.B) { benchGreedyM(b, 3) }
func BenchmarkGreedyM4(b *testing.B) { benchGreedyM(b, 4) }

func benchDeltaSearch(b *testing.B, s routing.DeltaSearch) {
	c := benchCluster(b, 40)
	demand := make([]int, c.Sensors()+1)
	for v := 1; v < len(demand); v++ {
		demand[v] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.BalancedPaths(c.G, topo.Head, demand, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingDeltaSearch* ablate the delta search strategy of the
// min-max routing (paper Section III-A increments delta linearly).
func BenchmarkRoutingDeltaSearchLinear(b *testing.B) { benchDeltaSearch(b, routing.LinearSearch) }
func BenchmarkRoutingDeltaSearchBinary(b *testing.B) { benchDeltaSearch(b, routing.BinarySearch) }

// BenchmarkDelayVariant ablates packet delay (Theorem 2: it cannot help).
func BenchmarkDelayVariant(b *testing.B) {
	c := benchCluster(b, 25)
	p := cluster.DefaultParams()
	p.AllowDelay = true
	p.RateBps = 40
	p.LossProb = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cluster.NewRunner(c, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunCycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterCluster ablates the Section V-G schemes: token rotation
// vs. channel coloring over a 9-cluster field.
func BenchmarkInterCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationInterCluster([]int{9}, 12, 500*time.Millisecond, 1)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "intercluster", exp.RenderInterCluster(rows))
	}
}

// BenchmarkAckCollection isolates the Section V-F acknowledgment phase:
// set-cover path selection plus ack polling on a 40-sensor cluster.
func BenchmarkAckCollection(b *testing.B) {
	c := benchCluster(b, 40)
	p := cluster.DefaultParams()
	p.RateBps = 1 // keep the data phase tiny so ack work dominates
	p.LossProb = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cluster.NewRunner(c, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunCycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSRFReduction times the Lemma 1 machinery end to end: random
// graph -> TSRF instance -> exact schedule -> Hamiltonian path.
func BenchmarkTSRFReduction(b *testing.B) {
	g := graph.NewUndirected(7)
	for v := 1; v < 7; v++ {
		g.AddEdge(v-1, v)
	}
	g.AddEdge(0, 3)
	g.AddEdge(2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsrf := core.TSRFFromGraph(g)
		if _, ok, err := tsrf.SolveTSRFP(); err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkGreedyScheduler measures the raw on-line scheduler on a big
// request batch (200 packets over a 50-sensor cluster).
func BenchmarkGreedyScheduler(b *testing.B) {
	c := benchCluster(b, 50)
	demand := make([]int, 51)
	for v := 1; v <= 50; v++ {
		demand[v] = 4
	}
	plan, err := routing.BalancedPaths(c.G, topo.Head, demand, routing.BinarySearch)
	if err != nil {
		b.Fatal(err)
	}
	routes := plan.CycleRoutes(0)
	var reqs []core.Request
	id := 0
	for v := 1; v <= 50; v++ {
		for k := 0; k < 4; k++ {
			id++
			reqs = append(reqs, core.Request{ID: id, Route: routes[v]})
		}
	}
	oracle := radio.SINROracle{M: c.Med}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Greedy(reqs, core.Options{Oracle: oracle, MaxConcurrent: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLongitudinal measures the battery-depletion runtime: cycles
// with real batteries, deaths and re-planning.
func BenchmarkLongitudinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := topo.Build(topo.DefaultConfig(20, 149))
		if err != nil {
			b.Fatal(err)
		}
		p := cluster.DefaultParams()
		p.RateBps = 60
		p.LossProb = 0
		p.Cycle = 2 * time.Second
		if _, err := cluster.RunLongitudinal(c, p, 0.08, 200, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAckCoverExact measures the Section V-F exact/greedy cover
// comparison on a 16-sensor cluster.
func BenchmarkAckCoverExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationAckCover(exp.Options{}, []int{16}, []int64{1}); err != nil {
			b.Fatal(err)
		}
	}
}
