package main

import "testing"

func snap(results ...Result) *Snapshot {
	return &Snapshot{Results: results}
}

func TestCompareSnapshots(t *testing.T) {
	old := snap(
		Result{Package: "p", Name: "BenchmarkA", NsPerOp: 100},
		Result{Package: "p", Name: "BenchmarkA", NsPerOp: 90}, // best of 2 runs
		Result{Package: "p", Name: "BenchmarkB", NsPerOp: 1000},
		Result{Package: "p", Name: "BenchmarkGone", NsPerOp: 5},
	)
	// A within tolerance (+10% of best), B regressed (+50%), C is new.
	fresh := snap(
		Result{Package: "p", Name: "BenchmarkA", NsPerOp: 99},
		Result{Package: "p", Name: "BenchmarkB", NsPerOp: 1500},
		Result{Package: "p", Name: "BenchmarkC", NsPerOp: 42},
	)
	regressed := compareSnapshots(old, fresh, 0.20)
	if len(regressed) != 1 || regressed[0] != "p/BenchmarkB" {
		t.Fatalf("regressed = %v, want [p/BenchmarkB]", regressed)
	}
	// A looser tolerance lets B through.
	if r := compareSnapshots(old, fresh, 0.60); len(r) != 0 {
		t.Fatalf("tolerance 60%% still flagged %v", r)
	}
	// An improvement is never a regression.
	faster := snap(Result{Package: "p", Name: "BenchmarkB", NsPerOp: 500})
	if r := compareSnapshots(old, faster, 0.20); len(r) != 0 {
		t.Fatalf("improvement flagged as regression: %v", r)
	}
}

func TestBestByNameKeysByPackage(t *testing.T) {
	best := bestByName([]Result{
		{Package: "p1", Name: "BenchmarkX", NsPerOp: 10},
		{Package: "p2", Name: "BenchmarkX", NsPerOp: 20},
	})
	if len(best) != 2 {
		t.Fatalf("same-named benchmarks across packages collapsed: %v", best)
	}
}
