package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// loadSnapshot reads a snapshot file written by a previous benchjson run.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &s, nil
}

// bestByName folds repeated runs of each benchmark down to its fastest
// ns/op — the standard noise-robust statistic; a machine can run slower
// than its best, never faster. Keyed by package/name so same-named
// benchmarks in different packages stay distinct.
func bestByName(results []Result) map[string]Result {
	best := make(map[string]Result, len(results))
	for _, r := range results {
		k := r.Package + "/" + r.Name
		if prev, ok := best[k]; !ok || r.NsPerOp < prev.NsPerOp {
			best[k] = r
		}
	}
	return best
}

// compareSnapshots prints a per-benchmark delta table of new vs old and
// returns the benchmarks whose best ns/op regressed by more than
// tolerance (0.20 = +20%). Benchmarks present on only one side are
// reported but never fail the comparison — baselines predate new
// benchmarks, and retired ones shouldn't wedge CI.
func compareSnapshots(old, new *Snapshot, tolerance float64) (regressed []string) {
	ob, nb := bestByName(old.Results), bestByName(new.Results)
	keys := make([]string, 0, len(nb))
	for k := range nb {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, k := range keys {
		n := nb[k]
		o, ok := ob[k]
		if !ok {
			fmt.Printf("%-60s %14s %14.0f %8s\n", k, "-", n.NsPerOp, "new")
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := ""
		if delta > tolerance {
			mark = "  << REGRESSION"
			regressed = append(regressed, k)
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n", k, o.NsPerOp, n.NsPerOp, delta*100, mark)
	}
	for k := range ob {
		if _, ok := nb[k]; !ok {
			fmt.Printf("%-60s %14.0f %14s %8s\n", k, ob[k].NsPerOp, "-", "gone")
		}
	}
	return regressed
}
