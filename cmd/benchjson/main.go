// Command benchjson runs the repo's Go benchmarks and writes the parsed
// results as JSON, so performance PRs can check in a machine-readable
// snapshot (e.g. BENCH_PR1.json) instead of pasted terminal output.
//
//	benchjson -bench 'GreedyScheduler|GroupCompatible|TestedOracle' -o BENCH_PR1.json
//	benchjson -bench FieldEpoch -pkgs ./internal/field/ -o BENCH_PR3.json
//	benchjson -count 3 -note "after power-matrix cache"
//	benchjson -bench FieldEpochLarge -benchtime 1x -timeout 30m -o BENCH_PR6.json
//
// With -compare, the fresh results are checked against a previous
// snapshot and the process exits nonzero when any benchmark's best ns/op
// regressed by more than -tolerance (default 20%) — the CI bench-guard:
//
//	benchjson -bench DistEpoch -pkgs ./internal/dist/ -count 3 -compare BENCH_PR8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the file format: environment metadata plus results.
type Snapshot struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkGreedyScheduler-4   300   3903215 ns/op   4576160 B/op   36033 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		pkgs      = flag.String("pkgs", "./...", "packages to benchmark")
		count     = flag.Int("count", 1, "benchmark repetitions (go test -count)")
		benchtime = flag.String("benchtime", "", "per-benchmark budget passed to go test -benchtime (e.g. 2s or 5x); expensive large-field fixtures want a fixed iteration count like 1x")
		timeout   = flag.String("timeout", "", "overall go test -timeout (default: go's own)")
		out       = flag.String("o", "", "output file (default stdout)")
		note      = flag.String("note", "", "free-form note stored in the snapshot")
		compare   = flag.String("compare", "", "baseline snapshot to compare against; exit nonzero on ns/op regressions beyond -tolerance")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression in -compare mode (0.20 = +20%)")
	)
	flag.Parse()

	// Load the baseline before spending minutes on benchmarks.
	var baseline *Snapshot
	if *compare != "" {
		var err error
		if baseline, err = loadSnapshot(*compare); err != nil {
			log.Fatal(err)
		}
	}

	args := []string{
		"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count),
	}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	if *timeout != "" {
		args = append(args, "-timeout", *timeout)
	}
	args = append(args, *pkgs)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Note:      *note,
	}
	pkg := ""
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Package: pkg, Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		snap.Results = append(snap.Results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatal(err)
	}
	if len(snap.Results) == 0 {
		log.Fatal("no benchmark results parsed")
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d results)", *out, len(snap.Results))
	} else if baseline == nil {
		os.Stdout.Write(enc)
	}
	if baseline != nil {
		if regressed := compareSnapshots(baseline, &snap, *tolerance); len(regressed) > 0 {
			log.Fatalf("%d benchmark(s) regressed beyond %.0f%% vs %s: %s",
				len(regressed), *tolerance*100, *compare, strings.Join(regressed, ", "))
		}
		log.Printf("no ns/op regression beyond %.0f%% vs %s", *tolerance*100, *compare)
	}
}
