// Command topoviz renders a cluster deployment as an ASCII map: the head
// at the center, each sensor drawn as its hop level (or its sector letter
// with -sectors), plus a summary of levels, loads and sector structure.
//
//	topoviz -nodes 40 -seed 3 -sectors
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/routing"
	"repro/internal/sector"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoviz: ")
	var (
		nodes   = flag.Int("nodes", 30, "number of sensors")
		seed    = flag.Int64("seed", 1, "deployment seed")
		width   = flag.Int("width", 60, "map width in characters")
		sectors = flag.Bool("sectors", false, "color sensors by sector instead of hop level")
	)
	flag.Parse()

	c, err := topo.Build(topo.DefaultConfig(*nodes, *seed))
	if err != nil {
		log.Fatal(err)
	}

	demand := make([]int, *nodes+1)
	for v := 1; v <= *nodes; v++ {
		demand[v] = 1
	}
	plan, err := routing.BalancedPaths(c.G, topo.Head, demand, routing.BinarySearch)
	if err != nil {
		log.Fatal(err)
	}

	var part *sector.Partition
	if *sectors {
		part, err = sector.BuildPartition(c.G, topo.Head, plan.CycleRoutes(0), demand, sector.Options{})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Print(renderMap(c, part, *width))
	fmt.Printf("\n%d sensors in a %.0f m square; head '@' at the center\n", *nodes, c.Cfg.Side)
	levels := map[int]int{}
	for v := 1; v <= *nodes; v++ {
		levels[c.Level[v]]++
	}
	fmt.Print("hop levels: ")
	for l := 1; levels[l] > 0; l++ {
		fmt.Printf("L%d=%d ", l, levels[l])
	}
	fmt.Printf("\nrouting delta (min-max load): %d\n", plan.Delta)
	if part != nil {
		fmt.Printf("sectors: %d\n", part.NSectors())
		for k, sec := range part.Sectors {
			fmt.Printf("  %c: roots %v, %d sensors\n", 'A'+k%26, part.Roots[k], len(sec))
		}
	}
}

func renderMap(c *topo.Cluster, part *sector.Partition, width int) string {
	if width < 10 {
		width = 10
	}
	height := width / 2 // terminal cells are ~2x taller than wide
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	side := c.Cfg.Side
	place := func(x, y float64, ch byte) {
		col := int(x / side * float64(width-1))
		row := int(y / side * float64(height-1))
		if row >= 0 && row < height && col >= 0 && col < width {
			grid[row][col] = ch
		}
	}
	for v := 1; v < c.Med.N(); v++ {
		p := c.Med.Pos(v)
		ch := byte('?')
		switch {
		case part != nil:
			if k := part.SectorOf(v); k >= 0 {
				ch = byte('A' + k%26)
			}
		case c.Level[v] > 0 && c.Level[v] <= 9:
			ch = byte('0' + c.Level[v])
		}
		place(p.X, p.Y, ch)
	}
	h := c.Med.Pos(topo.Head)
	place(h.X, h.Y, '@')
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
