// Command experiments regenerates the paper's evaluation figures and the
// repo's ablations, printing ASCII tables (and optional CSV).
//
//	experiments -fig 7a            # Fig. 7(a) percentage of active time
//	experiments -fig 7b            # Fig. 7(b) throughput vs. S-MAC+AODV
//	experiments -fig 7c            # Fig. 7(c) sector lifetime ratio
//	experiments -fig field         # churned multi-cluster field sweep
//	experiments -fig all -quick    # everything, cut-down sweeps
//	experiments -ablation m        # compatibility-degree ablation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/stats"
)

// writeMetrics renders the registry to path: Prometheus text exposition
// for .prom/.txt files, JSON otherwise.
func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".prom", ".txt":
		err = reg.WritePrometheus(f)
	default:
		err = reg.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		fig      = flag.String("fig", "", "figure to regenerate: 7a, 7b, 7c, capacity, decay, field or all")
		ablation = flag.String("ablation", "", "ablation to run: delta, m, delay, intercluster, interference, gap, order, energy, joint or all")
		quick    = flag.Bool("quick", false, "use cut-down sweeps")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		workers  = flag.Int("workers", 0, "sweep worker-pool size; 0 = all CPUs, 1 = sequential")
		metrics  = flag.String("metrics", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, else JSON)")
	)
	flag.Parse()
	if *fig == "" && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := exp.Options{Workers: *workers}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cluster.RegisterMetrics(reg)
		field.RegisterMetrics(reg)
		opts.Obs = reg.Observer()
	}

	var csvRows [][]string
	var csvHeaders []string

	runFig := func(name string) {
		switch name {
		case "7a":
			cfg := exp.DefaultFig7a()
			if *quick {
				cfg = exp.QuickFig7a()
			}
			points, err := exp.Fig7a(opts, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Fig. 7(a): percentage of active time (rows: cluster size; '*' = over capacity)")
			fmt.Println(exp.RenderFig7a(points))
			csvHeaders = []string{"nodes", "rate_bps", "active_pct", "fits"}
			csvRows = csvRows[:0]
			for _, p := range points {
				csvRows = append(csvRows, []string{
					fmt.Sprint(p.Nodes), fmt.Sprint(p.RateBps),
					fmt.Sprintf("%.2f", p.ActivePct), fmt.Sprint(p.Fits),
				})
			}
		case "7b":
			cfg := exp.DefaultFig7b()
			if *quick {
				cfg = exp.QuickFig7b()
			}
			points, err := exp.Fig7b(opts, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Fig. 7(b): throughput at the sink (bytes/second)")
			fmt.Println(exp.RenderFig7b(points))
			csvHeaders = []string{"series", "offered_bps", "throughput_bps"}
			csvRows = csvRows[:0]
			for _, p := range points {
				csvRows = append(csvRows, []string{
					p.Series, fmt.Sprint(p.OfferedBps), fmt.Sprintf("%.1f", p.ThroughputBps),
				})
			}
		case "7c":
			cfg := exp.DefaultFig7c()
			if *quick {
				cfg = exp.QuickFig7c()
			}
			points, err := exp.Fig7c(opts, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Fig. 7(c): lifetime ratio, sectors vs. no sectors")
			fmt.Println(exp.RenderFig7c(points))
			csvHeaders = []string{"nodes", "lifetime_ratio"}
			csvRows = csvRows[:0]
			for _, p := range points {
				csvRows = append(csvRows, []string{fmt.Sprint(p.Nodes), fmt.Sprintf("%.3f", p.Ratio)})
			}
		case "decay":
			cfg := exp.DefaultDecay()
			if *quick {
				cfg.Nodes = []int{15}
				cfg.Seeds = []int64{1}
			}
			rows, err := exp.Decay(opts, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Network decay (longitudinal Fig. 7(c)): battery deaths with and without sectors")
			fmt.Println(exp.RenderDecay(rows))
		case "capacity":
			nodes := []int{10, 20, 30, 40, 60, 80, 100}
			seeds := []int64{1, 2}
			if *quick {
				nodes = []int{10, 30}
				seeds = []int64{1}
			}
			p := exp.DefaultFig7a().Params
			p.LossProb = 0
			rows, err := exp.Capacity(opts, nodes, seeds, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Capacity frontier: max lossless per-sensor rate by cluster size")
			fmt.Println(exp.RenderCapacity(rows))
			csvHeaders = []string{"nodes", "max_rate_bps", "total_bps"}
			csvRows = csvRows[:0]
			for _, r := range rows {
				csvRows = append(csvRows, []string{
					fmt.Sprint(r.Nodes), fmt.Sprintf("%.1f", r.MaxRateBps), fmt.Sprintf("%.1f", r.TotalBps),
				})
			}
		case "field":
			headers, rows, err := runFieldFig(opts, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Field sweep: field size x churn rate through the sharded runtime")
			fmt.Println(stats.Table(headers, rows))
			csvHeaders = headers
			csvRows = rows
		default:
			log.Fatalf("unknown figure %q", name)
		}
	}

	runAblation := func(name string) {
		switch name {
		case "delta":
			rows, err := exp.AblationDeltaSearch(opts, []int{15, 30, 45, 60}, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: routing delta search (linear, per the paper, vs. binary)")
			fmt.Println(exp.RenderDeltaSearch(rows))
		case "m":
			rows, err := exp.AblationM(opts, 25, []int{1, 2, 3, 4}, 1, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: compatibility degree M")
			fmt.Println(exp.RenderM(rows))
		case "delay":
			rows, err := exp.AblationDelay(opts, []int{15, 30}, 1, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: pipelined vs. delay-allowed scheduling (Theorem 2)")
			fmt.Println(exp.RenderDelay(rows))
		case "intercluster":
			rows, err := exp.AblationInterCluster([]int{4, 9, 16}, 12, 500*time.Millisecond, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: inter-cluster interference removal (Section V-G)")
			fmt.Println(exp.RenderInterCluster(rows))
		case "interference":
			res, err := exp.AblationInterferenceModel(opts, 50, 20, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: protocol (pairwise) model vs. accumulated-interference SINR")
			fmt.Println(stats.Table(
				[]string{"trials", "pairwise-built schedules that collide", "SINR-built schedules that collide"},
				[][]string{{
					fmt.Sprint(res.Trials),
					fmt.Sprint(res.PairwiseCollisions),
					fmt.Sprint(res.SINRCollisions),
				}},
			))
		case "ack":
			rows, err := exp.AblationAckCover(opts, []int{8, 12, 16, 20}, []int64{1, 2, 3})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: acknowledgment-collection cover (Section V-F), greedy vs. exact")
			fmt.Println(exp.RenderAck(rows))
		case "pcf":
			rows, err := exp.PCFComparison([]int{10, 20, 30, 50, 80}, []int64{1, 2, 3})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Baseline: single-hop polling (802.11 PCF / Bluetooth style) vs. multi-hop polling")
			fmt.Println(exp.RenderPCF(rows))
		case "joint":
			res, err := exp.AblationJointGap(60, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: JMHRP decomposition (Section III-E) vs. exact joint optimum")
			fmt.Println(exp.RenderJointGap(res))
		case "gap":
			res, err := exp.AblationGreedyGap(200, 5, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: on-line greedy vs. exact optimum (small random instances)")
			fmt.Println(exp.RenderGreedyGap(res))
		case "order":
			rows, err := exp.AblationOrder(opts, 30, 1, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: greedy scan-order heuristics")
			fmt.Println(exp.RenderOrder(rows))
		case "energy":
			rows, err := exp.AblationEnergyModes(opts, 30, 1, 3, 100)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: sleeping policies (early sleep, sectors, both)")
			fmt.Println(exp.RenderEnergyModes(rows))
		default:
			log.Fatalf("unknown ablation %q", name)
		}
	}

	if *fig != "" {
		figs := []string{*fig}
		if *fig == "all" {
			figs = []string{"7a", "7b", "7c"}
		}
		for _, f := range figs {
			runFig(f)
		}
	}
	if *ablation != "" {
		abls := []string{*ablation}
		if *ablation == "all" {
			abls = []string{"delta", "m", "delay", "intercluster", "interference", "gap", "order", "energy", "joint", "pcf", "ack"}
		}
		for _, a := range abls {
			runAblation(a)
		}
	}

	if *csvPath != "" && len(csvRows) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := stats.WriteCSV(f, csvHeaders, csvRows); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", *csvPath, len(csvRows))
	}

	if reg != nil {
		if err := writeMetrics(reg, *metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metrics)
	}
}
