package main

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/field"
	"repro/internal/topo"
)

// The field figure: a sweep over field size x churn rate through the
// internal/field runtime. Each cell deploys a Voronoi field, colors its
// inter-cluster interference graph, then runs churned epochs, reporting
// run-wide throughput at the heads, the steady-state lifetime estimate,
// the surviving population and whether the busiest channel's duty still
// fits the cycle. Cells run sequentially — the runtime itself
// parallelizes channel shards with opts.Workers.
func runFieldFig(opts exp.Options, quick bool) ([]string, [][]string, error) {
	type size struct {
		heads, sensors int
		side           float64
	}
	sizes := []size{{4, 80, 300}, {6, 150, 380}, {9, 240, 460}}
	churns := []float64{0, 0.25, 0.5}
	epochs := 6
	if quick {
		sizes = sizes[:2]
		churns = []float64{0, 0.5}
		epochs = 3
	}

	p := cluster.DefaultParams()
	p.RateBps = 15
	p.Cycle = 10 * time.Second
	p.UseSectors = true
	p.EarlySleep = true

	headers := []string{
		"clusters", "sensors", "churn", "channels", "throughput_Bps",
		"delivered_pct", "lifetime_h", "deaths", "stranded", "colored_cycle_ms", "fits",
	}
	var rows [][]string
	for _, sz := range sizes {
		for _, rate := range churns {
			f := topo.BuildField(877, sz.side, sz.heads, sz.sensors)
			cfg := topo.DefaultConfig(0, 0)
			cfg.SensorRange = 40
			cfg.HeadRange = sz.side
			rt, err := field.New(f, field.Config{
				Topo:              cfg,
				Params:            p,
				InterferenceRange: 80,
				BatteryJoules:     300,
				EpochCycles:       2,
				Epochs:            epochs,
				Churn:             field.Churn{FaultRate: rate},
			})
			if err != nil {
				return nil, nil, err
			}
			s, err := rt.Run(opts)
			if err != nil {
				return nil, nil, err
			}
			seconds := float64(s.Epochs*s.EpochCycles) * p.Cycle.Seconds()
			rows = append(rows, []string{
				fmt.Sprint(sz.heads), fmt.Sprint(sz.sensors), fmt.Sprintf("%.2f", rate),
				fmt.Sprint(s.Channels),
				fmt.Sprintf("%.1f", float64(s.DeliveredTotal*p.DataBytes)/seconds),
				fmt.Sprintf("%.1f", s.DeliveredFraction()*100),
				fmt.Sprintf("%.1f", s.Lifetime.Hours()),
				fmt.Sprint(len(s.Deaths)),
				fmt.Sprint(s.StrandedFinal),
				fmt.Sprintf("%.1f", float64(s.MaxColoredCycle())/float64(time.Millisecond)),
				fmt.Sprint(s.FitsCycle(p.Cycle)),
			})
		}
	}
	return headers, rows, nil
}
