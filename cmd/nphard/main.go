// Command nphard demonstrates the paper's NP-hardness reductions on
// concrete instances:
//
//   - Lemma 1 / Fig. 4: Hamiltonian Path <-> TSRF polling in n+1 slots;
//   - Theorem 5 / Fig. 6: Partition <-> sector partition (CPAR).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nphard: ")
	var (
		vertices = flag.Int("vertices", 5, "vertices of the random graph for the Lemma 1 demo")
		edgeProb = flag.Float64("p", 0.5, "edge probability of the random graph")
		seed     = flag.Int64("seed", 1, "random graph seed")
		partSet  = flag.String("partition", "3,2,1,2", "comma-separated integers for the Theorem 5 demo")
	)
	flag.Parse()

	demoLemma1(*vertices, *edgeProb, *seed)
	fmt.Println()
	demoTheorem5(*partSet)
}

func demoLemma1(n int, p float64, seed int64) {
	fmt.Printf("=== Lemma 1: Hamiltonian Path <-> TSRF polling (n=%d, p=%.2f, seed=%d) ===\n", n, p, seed)
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	fmt.Printf("graph edges: %v\n", g.Edges())

	hp := graph.HamiltonianPath(g)
	if hp != nil {
		fmt.Printf("Hamiltonian path: %v\n", hp)
	} else {
		fmt.Println("Hamiltonian path: none")
	}

	tsrf := core.TSRFFromGraph(g)
	path, ok, err := tsrf.SolveTSRFP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal TSRF schedule meets the %d-slot bound: %v\n", tsrf.OptimalMakespan(), ok)
	if ok != (hp != nil) {
		log.Fatalf("REDUCTION BROKEN: Hamiltonian=%v but %d-slot schedule=%v", hp != nil, n+1, ok)
	}
	if ok {
		fmt.Printf("path recovered from the schedule: %v\n", path)
		sched, err := tsrf.HamPathToSchedule(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.Validate(sched, tsrf.Reqs, tsrf.Oracle); err != nil {
			log.Fatalf("round-trip schedule invalid: %v", err)
		}
		fmt.Println("round trip path -> schedule -> path verified; slots:")
		for s, group := range sched.Slots {
			fmt.Printf("  slot %d: %v\n", s+1, group)
		}
	}
	// The greedy always produces a valid (possibly longer) schedule.
	gs, _, err := core.Greedy(tsrf.Reqs, core.Options{Oracle: tsrf.Oracle})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-line greedy schedule: %d slots (optimal bound %d)\n", gs.Makespan(), tsrf.OptimalMakespan())
}

func demoTheorem5(spec string) {
	fmt.Printf("=== Theorem 5: Partition <-> sector partition (CPAR), set {%s} ===\n", spec)
	var a []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad integer %q in -partition", part)
		}
		a = append(a, v)
	}
	inst, err := sector.CPARFromPartition(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: head + 2 first-level sensors + %d chain sensors; bound B = %.0f\n",
		inst.G.N()-3, inst.Bound)

	subset, partitionable := graph.Partition(a)
	fmt.Printf("Partition instance solvable: %v\n", partitionable)
	if partitionable {
		var s1, s2 []int
		for i, in := range subset {
			if in {
				s1 = append(s1, a[i])
			} else {
				s2 = append(s2, a[i])
			}
		}
		fmt.Printf("  split: %v | %v\n", s1, s2)
	}

	assign, ok := inst.SolveCPAR()
	fmt.Printf("CPAR satisfiable at bound %.0f: %v\n", inst.Bound, ok)
	if err := inst.VerifyReduction(); err != nil {
		log.Fatalf("REDUCTION BROKEN: %v", err)
	}
	if ok {
		part, err := inst.PartitionToSectors(assign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sector of S1: %v\n", part.Sectors[0])
		fmt.Printf("sector of S2: %v\n", part.Sectors[1])
		fmt.Printf("max pseudo power consumption rate: %.0f (bound %.0f)\n",
			sector.MaxPseudoRate(part, inst.Demand(), 1, 1), inst.Bound)
	}
	fmt.Println("equivalence verified on this instance.")
}
