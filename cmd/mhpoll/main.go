// Command mhpoll simulates one polling cluster and prints a cycle-by-cycle
// summary: duty length, ack/data slots, retries, per-sensor active time
// and projected lifetime.
//
// Example:
//
//	mhpoll -nodes 30 -rate 60 -cycles 10 -sectors
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mhpoll: ")

	var (
		nodes     = flag.Int("nodes", 30, "number of sensors in the cluster")
		rate      = flag.Float64("rate", 20, "per-sensor data rate in bytes/second")
		cycleSec  = flag.Float64("cycle", 4, "cycle length in seconds")
		cycles    = flag.Int("cycles", 5, "number of duty cycles to simulate")
		m         = flag.Int("m", 3, "compatibility degree M")
		loss      = flag.Float64("loss", 0.02, "per-transmission loss probability")
		seed      = flag.Int64("seed", 1, "deployment and workload seed")
		sectors   = flag.Bool("sectors", false, "divide the cluster into sectors")
		binary    = flag.Bool("binary-delta", false, "use binary search for the routing delta")
		battery   = flag.Float64("battery", 100, "sensor battery capacity in joules")
		tracePath = flag.String("trace", "", "write a slot-level CSV trace of the data phases to this file")
		metrics   = flag.String("metrics", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, else JSON)")
	)
	flag.Parse()

	c, err := topo.Build(topo.DefaultConfig(*nodes, *seed))
	if err != nil {
		log.Fatal(err)
	}
	p := cluster.DefaultParams()
	p.RateBps = *rate
	p.Cycle = time.Duration(*cycleSec * float64(time.Second))
	p.M = *m
	p.LossProb = *loss
	p.Seed = *seed
	p.UseSectors = *sectors
	if *binary {
		p.Search = routing.BinarySearch
	}

	r, err := cluster.NewRunner(c, p)
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" || *metrics != "" {
		r.Trace = &trace.Log{}
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cluster.RegisterMetrics(reg)
		trace.RegisterMetrics(reg)
		r.Obs = reg.Observer()
	}

	fmt.Printf("cluster: %d sensors in %.0fx%.0f m, max hop count %d, routing delta %d\n",
		c.Sensors(), c.Cfg.Side, c.Cfg.Side, c.MaxLevel(), r.Plan.Delta)
	if r.Part != nil {
		fmt.Printf("sectors: %d\n", r.Part.NSectors())
	}

	for i := 0; i < *cycles; i++ {
		res, err := r.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %2d: offered %3d delivered %3d | ack %3d + data %4d slots | duty %8v | active %5.1f%% | retries %d\n",
			i, res.Offered, res.Delivered, res.AckSlots, res.DataSlots,
			res.Duty.Round(time.Microsecond), res.ActiveFraction*100, res.Retries)
		if !res.Fits {
			fmt.Fprintln(os.Stderr, "  warning: duty exceeded the cycle; the cluster is over capacity")
		}
	}

	s, err := r.Run(1)
	if err != nil {
		log.Fatal(err)
	}
	lt := s.Lifetime(energy.DefaultModel(), *battery)
	fmt.Printf("projected first-sensor-death lifetime at %.0f J: %v\n",
		*battery, lt.Round(time.Minute))
	fmt.Printf("interference groups tested by the head: %d\n", s.OracleTests)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := r.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s\n", r.Trace.Len(), *tracePath)
	}

	if reg != nil {
		// Bridge the slot-level trace into the same registry so the
		// snapshot carries event counts and delivery latencies alongside
		// the cycle series.
		r.Trace.Summarize(reg.Observer())
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		switch filepath.Ext(*metrics) {
		case ".prom", ".txt":
			err = reg.WritePrometheus(f)
		default:
			err = reg.WriteJSON(f)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metrics)
	}
}
