// Command mhpolld is the long-running simulation job daemon: an HTTP
// service that accepts field-simulation and experiment-sweep jobs,
// schedules them by class and priority on a bounded worker pool, streams
// epoch progress over SSE and serves the process metrics registry at
// /metrics.
//
//	mhpolld -addr :8677 -spool /var/lib/mhpolld
//
// Scheduling: jobs dispatch by class (interactive > batch > background),
// then priority, then earliest deadline, then submit order. Jobs with a
// retry policy back off exponentially between failed attempts and
// dead-letter once the budget is spent (resurrect with POST
// /v1/jobs/{id}/retry); a per-spec circuit breaker parks repeat
// offenders for -breaker-cooldown after -breaker-threshold consecutive
// failures.
//
// Crash safety: running field jobs checkpoint to the spool directory at
// every epoch boundary; restarting the daemon over the same spool
// re-queues interrupted jobs and resumes them from their checkpoints,
// producing the same final summaries an uninterrupted run would have.
// Backoff schedules survive restarts the same way.
//
// Distributed execution: every daemon also serves the dist worker API
// under /v1/worker, so any mhpolld can act as a shard worker for
// another daemon's dist_field job. Submitting a dist_field job (with
// the worker daemons' base URLs in the spec) makes this daemon the
// coordinator: it shards the field's clusters across the fleet,
// commits every epoch to its own spool, survives worker loss by
// reassigning shards to survivors, and finishes with a summary
// byte-identical to a single-process run of the same field spec.
//
// Observability: the registry is sampled into an in-memory history
// store every -sample (query it at /v1/series), declarative alert
// rules — built-in defaults overlaid by -rules and POST
// /v1/alerts/rules — evaluate on the same tick, and firing/resolved
// transitions stream at /v1/alerts/events and POST to -webhook.
// GET /v1/healthz reports uptime, queue pressure and pool occupancy.
//
// Shutdown: SIGINT/SIGTERM stops accepting requests, cancels running
// jobs (each stops at its next epoch boundary, checkpoint already on
// disk) and drains the pool under -drain; a second signal aborts.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/alerting"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("mhpolld: ")

	var (
		addr  = flag.String("addr", "127.0.0.1:8677", "HTTP listen address")
		spool = flag.String("spool", "mhpolld-spool", "spool directory for job manifests and checkpoints")
		jobs  = flag.Int("jobs", 2, "jobs executing concurrently")
		queue = flag.Int("queue", 64, "queued-job limit before submissions get 429")
		drain = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline")

		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive failures of one spec that trip its circuit breaker (negative disables)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker parks attempts before a half-open probe")

		sample  = flag.Duration("sample", 5*time.Second, "metric history sample and alert evaluation interval")
		history = flag.Int("history", alerting.DefaultCapacity, "metric history ring capacity (samples retained per series)")
		rules   = flag.String("rules", "", "JSON alert rules file, overlaid on the built-in defaults by name")
		webhook = flag.String("webhook", "", "URL alert notifications POST to (empty disables the webhook sink)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	cluster.RegisterMetrics(reg)
	field.RegisterMetrics(reg)
	routing.RegisterMetrics(reg)
	service.RegisterMetrics(reg)
	dist.RegisterMetrics(reg)
	alerting.RegisterMetrics(reg)
	logger := log.Default()

	m, err := service.New(service.Config{
		SpoolDir:         *spool,
		Workers:          *jobs,
		QueueDepth:       *queue,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Obs:              reg.Observer(),
		Log:              logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Start()

	api := service.NewServer(m, reg, logger)
	// Every daemon is also a dist shard worker: coordinators open
	// sessions against /v1/worker, built from the same FieldSpec wire
	// format the job API speaks.
	wh := dist.NewWorkerHost(service.BuildFieldSpec)
	wh.Obs = reg.Observer()
	api.Handle("/v1/worker/", wh.Handler())

	// Fleet observability: sample the registry into the history store,
	// evaluate the alert rules, notify. Operator rules overlay the
	// defaults by name.
	var sinks []alerting.Sink
	if *webhook != "" {
		sinks = append(sinks, &alerting.WebhookSink{URL: *webhook})
	}
	engine := alerting.New(alerting.Config{
		Registry: reg,
		Interval: *sample,
		Capacity: *history,
		Sinks:    sinks,
		Log:      logger,
	})
	if err := engine.SetRules(alerting.DefaultRules()); err != nil {
		log.Fatal(err)
	}
	if *rules != "" {
		rs, err := alerting.LoadRulesFile(*rules)
		if err != nil {
			log.Fatal(err)
		}
		if err := engine.SetRules(rs); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d alert rules from %s", len(rs), *rules)
	}
	alertHandler := engine.Handler()
	api.Handle("/v1/series", alertHandler)
	api.Handle("/v1/alerts", alertHandler)
	api.Handle("/v1/alerts/", alertHandler)
	engineCtx, engineStop := context.WithCancel(context.Background())
	defer engineStop()
	go engine.Run(engineCtx)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (spool %s, %d workers)", *addr, *spool, *jobs)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (deadline %s)", sig, *drain)
	case err := <-errc:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sigc
		log.Print("second signal: aborting drain")
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := m.Stop(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("drain incomplete: %v (interrupted jobs resume on restart)", err)
		os.Exit(1)
	}
	log.Print("clean exit")
}
